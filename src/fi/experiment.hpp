// Workload (golden-run cache) and single fault-injection experiments.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fi/fault_plan.hpp"
#include "fi/injector_hook.hpp"
#include "ir/module.hpp"
#include "stats/outcome_counts.hpp"
#include "vm/interpreter.hpp"
#include "vm/snapshot.hpp"

namespace onebit::fi {

class OutcomeCache;

/// Golden-prefix fast-forward knobs: how densely a Workload checkpoints its
/// golden run, and how much memory those checkpoints may hold. Every faulty
/// run's prefix before its first injection is identical to the golden run,
/// so runExperiment() resumes from the densest snapshot at-or-before the
/// plan's first injection index instead of re-interpreting the prefix.
/// Snapshots never change results — resumed continuation is bit-identical
/// to from-scratch execution (the vm/snapshot.hpp contract) — they only
/// change how fast experiments run.
struct SnapshotPolicy {
  /// Auto spacing: the vm::SnapshotCapturePolicy default, coarsened on the
  /// fly by the retention bounds (drop-every-other + interval doubling).
  static constexpr std::uint64_t kAutoInterval = ~0ULL;

  /// Combined (read + write) candidate indices between captures.
  /// 0 disables the snapshot cache entirely; kAutoInterval picks a spacing
  /// from the retention bounds.
  std::uint64_t interval = kAutoInterval;
  /// Per-workload byte budget for kept snapshots (0 disables the cache).
  std::size_t budgetBytes = 16 << 20;
  /// Upper bound on kept snapshots (0 = bounded by budgetBytes alone).
  std::size_t maxSnapshots = 64;

  [[nodiscard]] bool enabled() const noexcept {
    return interval != 0 && budgetBytes != 0;
  }

  /// The cache-off policy (every experiment interprets from scratch).
  static SnapshotPolicy disabled() noexcept {
    SnapshotPolicy p;
    p.interval = 0;
    return p;
  }
};

/// Outcome-equivalence pruning knobs (AFL exec_cksum-style). When enabled,
/// the Workload's golden run additionally records the incremental VM state
/// hash (vm/state_hash.hpp) at every multiple of a dynamic-instruction
/// `grid`, and runExperiment(w, plan, cache) pauses each faulty run at the
/// first boundary past hook exhaustion to compare hashes: a golden-hash
/// match short-circuits to the golden (masked) outcome, a cache match
/// replays a previously computed outcome, a miss runs to completion and
/// populates the cache. Like SnapshotPolicy, pruning is a pure speedup — it
/// must never change results — and is therefore NOT part of the workload
/// fingerprint.
struct PrunePolicy {
  bool enabled = false;
  /// Boundary spacing in dynamic instructions. 0 = auto: ~128 boundaries
  /// over the golden run, clamped to [64, 16384]. Grid choice trades pause
  /// overhead against how early a short-circuit can trigger; it never
  /// affects correctness (cache entries are keyed by exact boundary).
  std::uint64_t grid = 0;

  static PrunePolicy on() noexcept {
    PrunePolicy p;
    p.enabled = true;
    return p;
  }
};

/// A program + input pair (the paper's "workload"), with its fault-free
/// profile: golden output, dynamic instruction count, and per-domain
/// candidate counts (Table II's "candidate instructions for fault
/// injection", plus the store-event stream of the MemoryData domain).
class Workload {
 public:
  /// Default faulty-run budget factor (LLFI uses one to two orders of
  /// magnitude above the fault-free runtime).
  static constexpr std::uint64_t kDefaultHangFactor = 50;

  /// Takes ownership of the module and runs the golden execution once.
  /// `hangFactor` scales the faulty-run instruction budget relative to the
  /// golden run. `snapshots` controls the golden-prefix snapshot cache
  /// captured during that same golden run (on by default; pass
  /// SnapshotPolicy::disabled() to interpret every experiment from scratch).
  /// `prune` additionally records the golden boundary-hash table for
  /// outcome-equivalence pruning (off by default; the golden run is then
  /// executed twice — once plain, once hashing — and the two are
  /// cross-checked to be identical).
  /// `dispatch` selects the execution backend for every hook-free,
  /// non-capturing, non-hashing segment this workload runs — the plain
  /// golden pass and the post-exhaustion suffix of every experiment.
  /// Like the snapshot and prune policies it is a pure speedup
  /// (bit-identical results, pinned by tests/dispatch_differential_test and
  /// tests/dispatch_equivalence_test) and is NOT part of the fingerprint.
  explicit Workload(ir::Module mod,
                    std::uint64_t hangFactor = kDefaultHangFactor,
                    SnapshotPolicy snapshots = {}, PrunePolicy prune = {},
                    vm::DispatchBackend dispatch = vm::DispatchBackend::Switch);

  [[nodiscard]] const ir::Module& module() const noexcept { return mod_; }
  [[nodiscard]] const vm::ExecResult& golden() const noexcept {
    return golden_;
  }
  /// Size of a fault domain's candidate stream over the golden run:
  /// read/write candidates for the register domains, committed store events
  /// for MemoryData, and dynamic instructions for RandomValue (the blind
  /// model addresses points in time).
  [[nodiscard]] std::uint64_t candidates(FaultDomain d) const noexcept {
    switch (d) {
      case FaultDomain::RegisterRead: return golden_.readCandidates;
      case FaultDomain::RegisterWrite: return golden_.writeCandidates;
      case FaultDomain::MemoryData: return golden_.storeCandidates;
      case FaultDomain::RandomValue: return golden_.instructions;
    }
    return golden_.readCandidates;
  }
  [[nodiscard]] const vm::ExecLimits& faultyLimits() const noexcept {
    return faultyLimits_;
  }
  /// The hang budget factor this workload was built with. Fleet brokers
  /// stamp it into cell records so worker processes rebuild the workload
  /// with the identical faulty-run budget (and thus fingerprint).
  [[nodiscard]] std::uint64_t hangFactor() const noexcept {
    return hangFactor_;
  }
  /// Stable 64-bit identity of this workload's observable behavior: a hash
  /// of the golden output, dynamic instruction count, both register
  /// candidate counts, and the faulty-run instruction budget (hangFactor).
  /// Two workloads that differ in any of these cannot share persisted
  /// campaign results (see fi/campaign_store.hpp). Snapshot policy is
  /// deliberately NOT part of the fingerprint — it cannot affect results.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept {
    return fingerprint_;
  }

  /// The fingerprint campaign keys should bind for `model`: the legacy
  /// fingerprint() for paper cells (so pre-FaultModel store records still
  /// resume), and an extended fingerprint additionally chaining the
  /// store-event candidate count for extension cells — MemoryData plans
  /// draw their first index from that stream, so its size is part of the
  /// result contract there.
  [[nodiscard]] std::uint64_t fingerprintFor(
      const FaultModel& model) const noexcept {
    return model.isPaperModel() ? fingerprint_ : extendedFingerprint_;
  }

  /// The densest golden-run snapshot usable for a faulty run whose first
  /// injection is at candidate `firstIndex` of domain `d`'s stream: the
  /// latest snapshot whose stream position is <= firstIndex (strictly
  /// before it for RandomValue, whose stream is the instruction counter
  /// itself: the arming callback at instruction `firstIndex` must still
  /// fire in the resumed run) and whose instruction count fits
  /// `maxInstructions` (so a from-scratch run would reach the snapshot
  /// point without exhausting fuel). nullptr when the cache is empty or no
  /// snapshot qualifies.
  [[nodiscard]] const vm::Snapshot* snapshotAtOrBefore(
      FaultDomain d, std::uint64_t firstIndex,
      std::uint64_t maxInstructions) const noexcept;

  [[nodiscard]] std::size_t snapshotCount() const noexcept {
    return snapshots_.size();
  }
  /// Total byteSize() of the kept snapshots (<= the policy's budget).
  [[nodiscard]] std::size_t snapshotBytes() const noexcept;

  /// True when this workload was built with PrunePolicy.enabled (the golden
  /// boundary-hash table exists and pruned experiments may run on it).
  [[nodiscard]] bool pruningEnabled() const noexcept { return hashGrid_ != 0; }
  /// The resolved boundary grid in dynamic instructions (0 = pruning off).
  [[nodiscard]] std::uint64_t hashGrid() const noexcept { return hashGrid_; }
  /// The golden run's state hash at dynamic instruction count `boundary`,
  /// or nullopt when `boundary` is not a recorded grid multiple (off-grid,
  /// or past the golden run's end).
  [[nodiscard]] std::optional<std::uint64_t> goldenHashAt(
      std::uint64_t boundary) const noexcept;

 private:
  ir::Module mod_;
  vm::ExecResult golden_;
  vm::ExecLimits faultyLimits_;
  std::uint64_t hangFactor_ = kDefaultHangFactor;
  std::uint64_t fingerprint_ = 0;
  std::uint64_t extendedFingerprint_ = 0;
  std::vector<vm::Snapshot> snapshots_;
  std::uint64_t hashGrid_ = 0;  ///< 0 = pruning off
  std::vector<std::uint64_t> goldenHashes_;  ///< [i] = hash at (i+1)*grid
};

/// How outcome-equivalence pruning resolved one experiment.
enum class PruneEvent : unsigned char {
  None,        ///< pruning off, or the run ended before a comparable boundary
  GoldenHash,  ///< short-circuited: state collapsed to the golden state
  CachedOutcome,  ///< short-circuited: state matched a previously seen state
  Miss,  ///< compared at a boundary with no match; ran to completion
};

/// Result of one fault-injection experiment.
struct ExperimentResult {
  stats::Outcome outcome = stats::Outcome::Benign;
  vm::TrapKind trap = vm::TrapKind::None;  ///< set when outcome == Detected
  unsigned activations = 0;  ///< bit-flip errors actually applied (RQ1)
  std::uint64_t instructions = 0;
  PruneEvent prune = PruneEvent::None;
};

/// Classify a faulty run against the golden run (§III-E taxonomy).
stats::Outcome classify(const vm::ExecResult& faulty,
                        const vm::ExecResult& golden) noexcept;

/// Execute one experiment described by `plan` on `workload`, fast-forwarding
/// over the golden prefix via the workload's snapshot cache when possible.
/// Bit-identical to a from-scratch run for every plan and policy.
ExperimentResult runExperiment(const Workload& workload,
                               const FaultPlan& plan);

/// Pruned variant: once the injector hook is exhausted, pause at the next
/// boundary of the workload's hash grid and compare state hashes — golden
/// match returns the golden (masked) outcome, a `cache` hit replays the
/// cached outcome, a miss runs to completion and populates `cache`. The
/// outcome/trap/instruction data is bit-identical to the unpruned overload
/// for every plan (activations are always computed per experiment); only
/// `prune` and wall-clock differ. Falls back to the unpruned overload when
/// `cache` is null or the workload was built without PrunePolicy.enabled.
/// Thread-safe for concurrent calls sharing one cache.
ExperimentResult runExperiment(const Workload& workload, const FaultPlan& plan,
                               OutcomeCache* cache);

}  // namespace onebit::fi
