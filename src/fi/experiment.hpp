// Workload (golden-run cache) and single fault-injection experiments.
#pragma once

#include <cstdint>
#include <string>

#include "fi/fault_plan.hpp"
#include "fi/injector_hook.hpp"
#include "ir/module.hpp"
#include "stats/outcome_counts.hpp"
#include "vm/interpreter.hpp"

namespace onebit::fi {

/// A program + input pair (the paper's "workload"), with its fault-free
/// profile: golden output, dynamic instruction count, and per-technique
/// candidate counts (Table II's "candidate instructions for fault
/// injection").
class Workload {
 public:
  /// Takes ownership of the module and runs the golden execution once.
  /// `hangFactor` scales the faulty-run instruction budget relative to the
  /// golden run (LLFI uses one to two orders of magnitude; we default to
  /// 50x + slack).
  explicit Workload(ir::Module mod, std::uint64_t hangFactor = 50);

  [[nodiscard]] const ir::Module& module() const noexcept { return mod_; }
  [[nodiscard]] const vm::ExecResult& golden() const noexcept {
    return golden_;
  }
  [[nodiscard]] std::uint64_t candidates(Technique t) const noexcept {
    return t == Technique::Read ? golden_.readCandidates
                                : golden_.writeCandidates;
  }
  [[nodiscard]] const vm::ExecLimits& faultyLimits() const noexcept {
    return faultyLimits_;
  }
  /// Stable 64-bit identity of this workload's observable behavior: a hash
  /// of the golden output, dynamic instruction count, both candidate
  /// counts, and the faulty-run instruction budget (hangFactor). Two
  /// workloads that differ in any of these cannot share persisted campaign
  /// results (see fi/campaign_store.hpp).
  [[nodiscard]] std::uint64_t fingerprint() const noexcept {
    return fingerprint_;
  }

 private:
  ir::Module mod_;
  vm::ExecResult golden_;
  vm::ExecLimits faultyLimits_;
  std::uint64_t fingerprint_ = 0;
};

/// Result of one fault-injection experiment.
struct ExperimentResult {
  stats::Outcome outcome = stats::Outcome::Benign;
  vm::TrapKind trap = vm::TrapKind::None;  ///< set when outcome == Detected
  unsigned activations = 0;  ///< bit-flip errors actually applied (RQ1)
  std::uint64_t instructions = 0;
};

/// Classify a faulty run against the golden run (§III-E taxonomy).
stats::Outcome classify(const vm::ExecResult& faulty,
                        const vm::ExecResult& golden) noexcept;

/// Execute one experiment described by `plan` on `workload`.
ExperimentResult runExperiment(const Workload& workload,
                               const FaultPlan& plan);

}  // namespace onebit::fi
