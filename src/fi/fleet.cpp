#include "fi/fleet.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <utility>

#if !defined(_WIN32)
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "fi/fault_plan.hpp"
#include "fi/outcome_cache.hpp"
#include "progs/registry.hpp"
#include "util/file_lock.hpp"
#include "util/rng.hpp"

namespace onebit::fi {

namespace {

/// Shard-local tally — the same accumulation CampaignSuite's ShardAccumulator
/// performs, so fleet shard records are field-for-field what a solo run
/// writes (prune counters stay local; they never reach the record).
struct ShardTally {
  stats::OutcomeCounts counts;
  ActivationHistogram hist{};

  void add(const ExperimentResult& r) noexcept {
    counts.add(r.outcome);
    const unsigned bucket = std::min(r.activations, kMaxActivationBucket);
    ++hist[static_cast<std::size_t>(r.outcome)][bucket];
  }
};

/// The pid prefix of a "<pid>:<hex>" worker id; nullopt for foreign formats.
std::optional<std::uint64_t> workerPid(const std::string& worker) {
  std::uint64_t pid = 0;
  std::size_t i = 0;
  for (; i < worker.size() && worker[i] >= '0' && worker[i] <= '9'; ++i) {
    pid = pid * 10 + static_cast<std::uint64_t>(worker[i] - '0');
  }
  if (i == 0 || i >= worker.size() || worker[i] != ':') return std::nullopt;
  return pid;
}

/// Is this lease still holding its shard? Expired leases are dead; on a
/// single host, so are leases whose recorded pid no longer exists (an early
/// re-lease accelerator — expiry alone is always sufficient).
bool leaseAlive(const CampaignStore::LeaseRecord& lease, std::uint64_t nowMs,
                bool sameHostLiveness) {
  if (lease.deadlineMs <= nowMs) return false;
  if (sameHostLiveness) {
    if (const std::optional<std::uint64_t> pid = workerPid(lease.worker)) {
      if (!util::processAlive(*pid)) return false;
    }
  }
  return true;
}

std::uint64_t clockOf(const FleetConfig& config) {
  return config.clock ? config.clock() : util::wallClockMs();
}

std::shared_ptr<const Workload> defaultResolve(
    const CampaignStore::CellRecord& cell) {
  const progs::ProgramInfo* info = progs::findProgram(cell.workload);
  if (info == nullptr) return nullptr;
  const std::uint64_t hangFactor =
      cell.hangFactor != 0 ? cell.hangFactor : Workload::kDefaultHangFactor;
  return std::make_shared<const Workload>(progs::compileProgram(*info),
                                          hangFactor);
}

}  // namespace

std::uint64_t adaptiveLeaseMs(std::vector<std::uint64_t> costsMs,
                              double quantile, std::uint64_t baseMs) {
  if (costsMs.empty() || !(quantile > 0.0) || quantile > 1.0 || baseMs == 0) {
    return baseMs;
  }
  std::sort(costsMs.begin(), costsMs.end());
  // Nearest-rank quantile: the smallest sample with at least `quantile` of
  // the distribution at or below it.
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(quantile * static_cast<double>(costsMs.size())));
  rank = std::clamp<std::size_t>(rank, 1, costsMs.size());
  const std::uint64_t q = costsMs[rank - 1];
  // 4× headroom: a lease must comfortably outlive a typical shard, or the
  // fleet steals work it should have waited for. The clamp keeps one wild
  // sample from driving deadlines to zero or to forever.
  const std::uint64_t headroom = q > ~0ULL / 4 ? ~0ULL : q * 4;
  const std::uint64_t lo = std::max<std::uint64_t>(1, baseMs / 8);
  const std::uint64_t hi = baseMs * 64;
  return std::clamp(headroom, lo, hi);
}

// ---------------------------------------------------------------- FleetBroker

FleetBroker::FleetBroker(const std::string& storePath, FleetConfig config)
    : store_(storePath, CampaignStore::WriteMode::Atomic),
      config_(std::move(config)) {}

std::optional<CampaignStore::CellRecord> FleetBroker::makeCell(
    const std::string& name, const Workload& workload,
    const FaultModel& model, std::size_t experiments, std::uint64_t seed,
    std::size_t resolvedShardSize) {
  if (name.empty() || experiments == 0 || resolvedShardSize == 0) {
    return std::nullopt;
  }
  CampaignStore::CellRecord rec;
  rec.key = CampaignStore::campaignKey(model, experiments, seed,
                                       workload.fingerprintFor(model));
  rec.workload = name;
  rec.spec = model.label();
  rec.flipWidth = model.flipWidth;
  rec.experiments = experiments;
  rec.seed = seed;
  rec.shardSize = resolvedShardSize;
  rec.hangFactor = workload.hangFactor();
  rec.dynInstrs = workload.golden().instructions;
  // The record carries the model as its label; a worker will re-parse it.
  // Verify the round trip reproduces both the spelling and the campaign key
  // — a degenerate model that re-parses to different semantics must run
  // in-process, not stall the fleet as a cell nobody can validate.
  std::optional<FaultModel> parsed = FaultModel::parse(rec.spec);
  if (!parsed) return std::nullopt;
  parsed->flipWidth = model.flipWidth;
  if (parsed->label() != rec.spec ||
      CampaignStore::campaignKey(*parsed, experiments, seed,
                                 workload.fingerprintFor(*parsed)) !=
          rec.key) {
    return std::nullopt;
  }
  return rec;
}

bool FleetBroker::submit(const CampaignStore::CellRecord& cell) {
  if (!loaded_) {
    store_.load();
    loaded_ = true;
  }
  return store_.appendCell(cell);
}

std::vector<FleetBroker::CellStatus> FleetBroker::status() {
  if (!loaded_) {
    store_.load();
    loaded_ = true;
  } else {
    store_.refresh();
  }
  const std::uint64_t nowMs = clockOf(config_);
  std::vector<CellStatus> out;
  for (const CampaignStore::CellRecord& cell : store_.cells()) {
    CellStatus st;
    st.cell = cell;
    for (std::size_t s = 0; s < cell.shardCount(); ++s) {
      if (store_.findShard(cell.key, cell.shardFirst(s),
                           cell.shardExperiments(s)) != nullptr) {
        ++st.recordedShards;
        st.recordedExperiments += cell.shardExperiments(s);
      } else if (store_.findQuarantine(cell.key, cell.shardFirst(s),
                                       cell.shardExperiments(s))) {
        ++st.quarantinedShards;
      }
    }
    // Snapshot first: forEachLease holds the store mutex across the
    // callback, so calling findShard from inside it would self-deadlock.
    std::vector<CampaignStore::LeaseRecord> leases;
    store_.forEachLease(cell.key, [&](const CampaignStore::LeaseRecord& l) {
      leases.push_back(l);
    });
    for (const CampaignStore::LeaseRecord& l : leases) {
      if (store_.findShard(cell.key, l.first, l.count) != nullptr) {
        continue;  // superseded: the shard is done, the lease is history
      }
      if (leaseAlive(l, nowMs, config_.sameHostLiveness)) {
        ++st.activeLeases;
      } else {
        ++st.expiredLeases;
      }
    }
    out.push_back(std::move(st));
  }
  return out;
}

bool FleetBroker::complete() {
  const std::vector<CellStatus> cells = status();
  if (cells.empty()) return false;
  return std::all_of(cells.begin(), cells.end(),
                     [](const CellStatus& c) { return c.complete(); });
}

std::optional<CampaignResult> FleetBroker::result(
    const CampaignStore::CellRecord& cell) {
  if (!loaded_) {
    store_.load();
    loaded_ = true;
  } else {
    store_.refresh();
  }
  CampaignResult result;
  if (std::optional<FaultModel> model = FaultModel::parse(cell.spec)) {
    model->flipWidth = cell.flipWidth;
    result.config.model = *model;
  }
  result.config.experiments = cell.experiments;
  result.config.seed = cell.seed;
  result.config.shardSize = cell.shardSize;
  // Merge in shard order, exactly like the suite's per-cell merge.
  for (std::size_t s = 0; s < cell.shardCount(); ++s) {
    const CampaignStore::ShardAggregate* agg = store_.findShard(
        cell.key, cell.shardFirst(s), cell.shardExperiments(s));
    if (agg == nullptr) return std::nullopt;
    result.completedExperiments += cell.shardExperiments(s);
    result.counts.merge(agg->counts);
    mergeHistogram(result.activationHist, agg->hist);
  }
  result.resumedExperiments = result.completedExperiments;
  return result;
}

// ---------------------------------------------------------------- FleetWorker

/// A cell this worker has resolved and key-validated: the rebuilt workload,
/// the re-parsed model, and the store metadata every shard record stamps.
struct FleetWorker::CellExec {
  std::shared_ptr<const Workload> workload;
  FaultModel model;
  std::uint64_t candidates = 0;
  CampaignStore::CampaignMeta meta;
  std::unique_ptr<OutcomeCache> cache;
};

FleetWorker::FleetWorker(const std::string& storePath, std::string workerId,
                         FleetConfig config)
    : store_(storePath, CampaignStore::WriteMode::Atomic),
      config_(std::move(config)),
      id_(std::move(workerId)) {
  if (id_.empty()) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%llu:%04llx",
                  static_cast<unsigned long long>(util::currentPid()),
                  static_cast<unsigned long long>(
                      util::hashCombine(util::wallClockMs(),
                                        util::currentPid()) &
                      0xffff));
    id_ = buf;
  }
  // Per-worker jitter stream: scheduling-only, so seeding from the id and
  // the wall clock costs no determinism.
  jitterState_ = util::hashCombine(util::hashBytes(id_),
                                   util::wallClockMs());
}

FleetWorker::~FleetWorker() = default;

std::uint64_t FleetWorker::now() const { return clockOf(config_); }

bool FleetWorker::leaseActive(const CampaignStore::LeaseRecord& lease,
                              std::uint64_t nowMs) const {
  // Our own lease never blocks us: this worker is single-threaded, so a
  // lease under our id with no shard record is the residue of an earlier
  // claim we abandoned (e.g. a cell that failed to resolve) — re-claimable.
  if (lease.worker == id_) return false;
  return leaseAlive(lease, nowMs, config_.sameHostLiveness);
}

FleetWorker::CellExec* FleetWorker::resolve(
    const CampaignStore::CellRecord& cell) {
  const auto it = execs_.find(cell.key);
  if (it != execs_.end()) return it->second.get();
  auto fail = [&](const char* why) -> CellExec* {
    std::fprintf(stderr,
                 "fleet worker %s: cell '%s' (%s) is unrunnable here: %s\n",
                 id_.c_str(), cell.workload.c_str(), cell.spec.c_str(), why);
    unrunnable_.insert(cell.key);
    return nullptr;
  };
  std::optional<FaultModel> model = FaultModel::parse(cell.spec);
  if (!model) return fail("unparseable fault spec");
  model->flipWidth = cell.flipWidth;
  const std::shared_ptr<const Workload> workload =
      config_.workloadResolver ? config_.workloadResolver(cell)
                               : defaultResolve(cell);
  if (workload == nullptr) return fail("workload did not resolve");
  // The submitting broker's campaign key must be reproduced bit for bit —
  // a mismatch means our rebuilt workload behaves differently (source
  // drift, wrong hang factor, version skew) and any shard we ran would be
  // recorded under a key it does not belong to.
  const std::uint64_t key = CampaignStore::campaignKey(
      *model, cell.experiments, cell.seed, workload->fingerprintFor(*model));
  if (key != cell.key) return fail("campaign key mismatch (version skew?)");
  auto exec = std::make_unique<CellExec>();
  exec->workload = workload;
  exec->model = *model;
  exec->candidates = workload->candidates(model->domain);
  exec->meta.key = cell.key;
  exec->meta.workload = cell.workload;
  exec->meta.specLabel = cell.spec;
  exec->meta.seed = cell.seed;
  exec->meta.experiments = cell.experiments;
  exec->meta.candidates = exec->candidates;
  if (config_.pruning && workload->pruningEnabled()) {
    exec->cache = std::make_unique<OutcomeCache>();
    const std::uint64_t cacheKey = CampaignStore::outcomeCacheKey(cell.key);
    exec->cache->warmFrom(store_, cacheKey);
    exec->cache->bindStore(&store_, cacheKey);
  }
  return execs_.emplace(cell.key, std::move(exec)).first->second.get();
}

std::uint64_t FleetWorker::leaseDurationFor(std::uint64_t cellKey) {
  if (!config_.adaptiveLease) return config_.leaseMs;
  // Completion leases carry the observed wall-clock of their shard; the
  // deadline becomes a quantile of those costs (see adaptiveLeaseMs).
  // Snapshot first — forEachLease holds the store mutex.
  std::vector<std::uint64_t> costs;
  store_.forEachLease(cellKey, [&](const CampaignStore::LeaseRecord& l) {
    if (l.costMs != 0) costs.push_back(l.costMs);
  });
  return adaptiveLeaseMs(std::move(costs), config_.leaseQuantile,
                         config_.leaseMs);
}

FleetWorker::Step FleetWorker::step() {
  struct Claim {
    CampaignStore::CellRecord cell;
    std::size_t shard = 0;
    std::uint64_t epoch = 0;
    std::uint64_t leaseMs = 0;  ///< adaptive duration fixed at claim time
  };
  std::optional<Claim> claim;
  bool allRecorded = true;
  bool activeElsewhere = false;
  bool quarantinedPending = false;

  {
    // The whole read-decide-append sequence is one cross-process critical
    // section; individual appends inside re-enter the same lock.
    util::FileLock* fileLock = store_.fileLock();
    std::lock_guard<util::FileLock> guard(*fileLock);
    if (!loaded_) {
      store_.load();
      loaded_ = true;
    } else {
      store_.refresh();
    }
    const std::uint64_t nowMs = now();

    // Cost-ordered scan: cells by descending estimated remaining work
    // (golden instructions × pending experiments — the suite's LPT
    // heuristic), shards ascending within a cell. Ties keep submission
    // order. Claim order never affects results, only makespan.
    const std::vector<CampaignStore::CellRecord> cells = store_.cells();
    std::vector<std::size_t> pendingExperiments(cells.size(), 0);
    std::vector<std::size_t> order(cells.size());
    for (std::size_t c = 0; c < cells.size(); ++c) {
      order[c] = c;
      for (std::size_t s = 0; s < cells[c].shardCount(); ++s) {
        if (store_.findShard(cells[c].key, cells[c].shardFirst(s),
                             cells[c].shardExperiments(s)) == nullptr) {
          pendingExperiments[c] += cells[c].shardExperiments(s);
        }
      }
      if (pendingExperiments[c] != 0) allRecorded = false;
    }
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return cells[a].dynInstrs * pendingExperiments[a] >
                              cells[b].dynInstrs * pendingExperiments[b];
                     });
    for (const std::size_t c : order) {
      if (claim) break;
      const CampaignStore::CellRecord& cell = cells[c];
      if (pendingExperiments[c] == 0) continue;
      for (std::size_t s = 0; s < cell.shardCount(); ++s) {
        const std::size_t first = cell.shardFirst(s);
        const std::size_t count = cell.shardExperiments(s);
        if (store_.findShard(cell.key, first, count) != nullptr) continue;
        if (!config_.ignoreQuarantine &&
            store_.findQuarantine(cell.key, first, count)) {
          // Poison verdict from the supervisor: skip, so the fleet
          // converges on everything else instead of crash-looping here.
          quarantinedPending = true;
          continue;
        }
        const std::optional<CampaignStore::LeaseRecord> lease =
            store_.latestLease(cell.key, first, count);
        if (lease && leaseActive(*lease, nowMs)) {
          activeElsewhere = true;
          continue;
        }
        if (unrunnable_.count(cell.key) != 0) continue;
        Claim c2;
        c2.cell = cell;
        c2.shard = s;
        c2.epoch = lease ? lease->epoch + 1 : 1;
        c2.leaseMs = leaseDurationFor(cell.key);
        store_.appendLease(cell.key,
                           {first, count, id_, c2.epoch,
                            nowMs + c2.leaseMs});
        claim = std::move(c2);
        break;
      }
    }
  }

  if (!claim) {
    if (allRecorded) return Step::Done;
    if (activeElsewhere) return Step::Idle;
    return quarantinedPending ? Step::Quarantined : Step::Stalled;
  }
  ++claims_;
  if (config_.onClaim) config_.onClaim(claims_);
#if !defined(_WIN32)
  if (!config_.poisonWorkload.empty() &&
      claim->cell.workload == config_.poisonWorkload &&
      (config_.poisonShard == static_cast<std::size_t>(-1) ||
       config_.poisonShard == claim->shard)) {
    // Artificial poison shard: die the way a real one kills its host —
    // uncleanly, mid-lease, right after claiming.
    ::raise(SIGKILL);
  }
#endif

  CellExec* exec = resolve(claim->cell);
  if (exec == nullptr) {
    // The claim is burned; our own lease never blocks us and lapses for
    // everyone else. The next step() skips this cell via unrunnable_.
    return Step::Idle;
  }

  const CampaignStore::CellRecord& cell = claim->cell;
  const std::size_t first = cell.shardFirst(claim->shard);
  const std::size_t count = cell.shardExperiments(claim->shard);
  ShardTally acc;
  const std::uint64_t startedMs = now();
  std::uint64_t lastBeat = startedMs;
  for (std::size_t i = first; i < first + count; ++i) {
    const FaultPlan fp = FaultPlan::forExperiment(exec->model,
                                                  exec->candidates,
                                                  cell.seed, i);
    acc.add(runExperiment(*exec->workload, fp, exec->cache.get()));
    const std::uint64_t t = now();
    if (t - lastBeat >= config_.resolvedHeartbeatMs()) {
      // Renew within our epoch: same claim, pushed-out deadline.
      store_.appendLease(cell.key, {first, count, id_, claim->epoch,
                                    t + claim->leaseMs});
      lastBeat = t;
    }
  }
  bool recorded = store_.appendShard(exec->meta, claim->shard, first, count,
                                     {acc.counts, acc.hist});
  if (!recorded && store_.lastWriteOutOfSpace()) {
    // Out of space is a pause-and-retry state, not a verdict: the computed
    // shard is too expensive to throw away while the disk may drain (log
    // rotation, a compaction elsewhere). Park on our heartbeat — keep the
    // lease warm so nobody re-runs the shard under us — and keep retrying
    // until the park budget runs out.
    const std::uint64_t parkDeadline = now() + config_.resolvedParkMs();
    std::fprintf(stderr,
                 "fleet worker %s: store '%s' is out of space; parking "
                 "shard %zu of '%s' for up to %llu ms\n",
                 id_.c_str(), store_.path().c_str(), claim->shard,
                 cell.workload.c_str(),
                 static_cast<unsigned long long>(config_.resolvedParkMs()));
    while (now() < parkDeadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(std::min<
          std::uint64_t>(config_.resolvedHeartbeatMs(), 1000)));
      const std::uint64_t t = now();
      store_.appendLease(cell.key, {first, count, id_, claim->epoch,
                                    t + claim->leaseMs});  // best-effort
      recorded = store_.appendShard(exec->meta, claim->shard, first, count,
                                    {acc.counts, acc.hist});
      if (recorded || !store_.lastWriteOutOfSpace()) break;
    }
  }
  if (recorded) {
    // Completion renewal: stamp the shard's observed wall-clock into the
    // lease stream (never the shard record — wall-clock is nondeterministic
    // and shard records must stay byte-identical across runs). The deadline
    // is already `now`: the shard record supersedes the lease anyway.
    const std::uint64_t t = now();
    const std::uint64_t cost = std::max<std::uint64_t>(1, t - startedMs);
    store_.appendLease(cell.key, {first, count, id_, claim->epoch, t, cost});
  } else {
    std::fprintf(stderr,
                 "fleet worker %s: store '%s' is not recording (write "
                 "failed); shard %zu of '%s' was computed but lost\n",
                 id_.c_str(), store_.path().c_str(), claim->shard,
                 cell.workload.c_str());
  }
  ++shardsRun_;
  return Step::Ran;
}

FleetWorker::Step FleetWorker::run(std::size_t maxShards) {
  for (;;) {
    const Step step = this->step();
    if (step == Step::Done || step == Step::Stalled ||
        step == Step::Quarantined) {
      return step;
    }
    if (step == Step::Ran) {
      prevSleepMs_ = 0;  // work found: restart the jitter ramp
      if (maxShards != 0 && shardsRun_ >= maxShards) return step;
    }
    if (step == Step::Idle) {
      // Decorrelated jitter (not fixed pollMs): uniform in
      // [pollMs, 3 × previous sleep], capped at 16 × pollMs. N idle workers
      // polling one store spread out instead of convoying on the flock at
      // the same instant every period.
      const std::uint64_t base = std::max<std::uint64_t>(1, config_.pollMs);
      const std::uint64_t cap = base * 16;
      const std::uint64_t prev = std::max(prevSleepMs_, base);
      std::uint64_t sleep = base;
      if (const std::uint64_t span = prev * 3 - base; span != 0) {
        sleep = base + util::SplitMix64(jitterState_++).next() % span;
      }
      sleep = std::min(sleep, cap);
      prevSleepMs_ = sleep;
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep));
    }
  }
}

// ------------------------------------------------------------------- runFleet

std::vector<CampaignResult> runFleet(const CampaignSuite& suite,
                                     SuiteConfig config,
                                     const std::string& storePath,
                                     const LocalFleetOptions& options) {
#if !defined(_WIN32)
  {
    FleetBroker broker(storePath, options.config);
    std::size_t submitted = 0;
    for (std::size_t c = 0; c < suite.cellCount(); ++c) {
      const SuiteCell& cell = suite.cell(c);
      if (cell.workload == nullptr || cell.experiments == 0) continue;
      const std::optional<CampaignStore::CellRecord> rec =
          FleetBroker::makeCell(
              cell.storeName, *cell.workload, cell.model, cell.experiments,
              cell.seed, resolveShardSize(cell.experiments,
                                          config.shardSize));
      // A cell makeCell() refuses (unnamed, or a degenerate model whose
      // label does not round-trip) is simply left for the in-process
      // remainder pass below.
      if (rec && broker.submit(*rec)) ++submitted;
    }
    if (submitted != 0 && options.workers != 0) {
      std::vector<pid_t> children;
      for (std::size_t w = 0; w < options.workers; ++w) {
        const pid_t pid = ::fork();
        if (pid < 0) break;  // fork pressure: run with fewer workers
        if (pid == 0) {
          FleetConfig cfg = options.config;
          if (w == 0 && options.killFirstWorkerAfterClaims != 0) {
            const std::size_t killAfter = options.killFirstWorkerAfterClaims;
            cfg.onClaim = [killAfter](std::size_t claims) {
              if (claims >= killAfter) ::raise(SIGKILL);
            };
          }
          int exitCode = 1;
          try {
            FleetWorker worker(storePath, {}, std::move(cfg));
            const FleetWorker::Step last =
                worker.run(options.maxShardsPerWorker);
            exitCode = last == FleetWorker::Step::Stalled      ? 3
                       : last == FleetWorker::Step::Quarantined ? 4
                                                                : 0;
          } catch (...) {
            exitCode = 1;
          }
          // _Exit: no atexit handlers, no flushing the parent's inherited
          // stdio buffers twice.
          std::_Exit(exitCode);
        }
        children.push_back(pid);
      }
      for (const pid_t pid : children) {
        int status = 0;
        while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
        }
        if (WIFSIGNALED(status)) {
          std::fprintf(stderr,
                       "fleet worker (pid %ld) died on signal %d; its "
                       "shards will be re-leased or finished in-process\n",
                       static_cast<long>(pid), WTERMSIG(status));
        }
      }
    }
  }  // broker closes its store handle before the final pass reopens it
#else
  (void)options;
#endif
  // Final pass: a resume-bound suite over the fleet store completes any
  // remainder (cells never submitted, shards lost to crashes) and performs
  // the cell-order merge. By the suite's resume contract its results are
  // bit-identical to suite.run() — this is what makes the fleet safe: no
  // lease interleaving can change the answer, only how much of the work
  // this final pass still has to do.
  CampaignStore store(storePath, CampaignStore::WriteMode::Atomic);
  store.load();
  SuiteConfig finalConfig = config;
  finalConfig.record = &store;
  finalConfig.resume = &store;
  CampaignSuite remainder(finalConfig);
  for (std::size_t c = 0; c < suite.cellCount(); ++c) {
    remainder.addCell(suite.cell(c));
  }
  return remainder.run();
}

}  // namespace onebit::fi
