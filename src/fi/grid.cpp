#include "fi/grid.hpp"

namespace onebit::fi {

std::vector<FaultSpec> paperCampaigns(Technique t) {
  std::vector<FaultSpec> specs;
  specs.push_back(FaultSpec::singleBit(t));
  for (const unsigned m : FaultSpec::paperMaxMbf()) {
    for (const WinSize& w : FaultSpec::paperWinSizes()) {
      specs.push_back(FaultSpec::multiBit(t, m, w));
    }
  }
  return specs;
}

std::vector<FaultSpec> paperCampaigns() {
  std::vector<FaultSpec> specs = paperCampaigns(Technique::Read);
  const std::vector<FaultSpec> write = paperCampaigns(Technique::Write);
  specs.insert(specs.end(), write.begin(), write.end());
  return specs;
}

std::vector<FaultSpec> multiRegisterCampaigns(Technique t) {
  std::vector<FaultSpec> specs;
  specs.push_back(FaultSpec::singleBit(t));
  for (const WinSize& w : FaultSpec::paperWinSizes()) {
    const bool isZero = w.kind == WinSize::Kind::Fixed && w.value == 0;
    if (isZero) continue;
    for (const unsigned m : FaultSpec::paperMaxMbf()) {
      specs.push_back(FaultSpec::multiBit(t, m, w));
    }
  }
  return specs;
}

std::vector<FaultSpec> sameRegisterCampaigns(Technique t) {
  std::vector<FaultSpec> specs;
  specs.push_back(FaultSpec::singleBit(t));
  for (const unsigned m : FaultSpec::paperMaxMbf()) {
    specs.push_back(FaultSpec::multiBit(t, m, WinSize::fixed(0)));
  }
  return specs;
}

}  // namespace onebit::fi
