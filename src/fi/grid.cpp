#include "fi/grid.hpp"

namespace onebit::fi {

std::vector<FaultModel> paperCampaigns(FaultDomain t) {
  std::vector<FaultModel> specs;
  specs.push_back(FaultModel::singleBit(t));
  for (const unsigned m : FaultModel::paperMaxMbf()) {
    for (const WinSize& w : FaultModel::paperWinSizes()) {
      specs.push_back(FaultModel::multiBitTemporal(t, m, w));
    }
  }
  return specs;
}

std::vector<FaultModel> paperCampaigns() {
  std::vector<FaultModel> specs = paperCampaigns(FaultDomain::RegisterRead);
  const std::vector<FaultModel> write = paperCampaigns(FaultDomain::RegisterWrite);
  specs.insert(specs.end(), write.begin(), write.end());
  return specs;
}

std::vector<FaultModel> multiRegisterCampaigns(FaultDomain t) {
  std::vector<FaultModel> specs;
  specs.push_back(FaultModel::singleBit(t));
  for (const WinSize& w : FaultModel::paperWinSizes()) {
    const bool isZero = w.kind == WinSize::Kind::Fixed && w.value == 0;
    if (isZero) continue;
    for (const unsigned m : FaultModel::paperMaxMbf()) {
      specs.push_back(FaultModel::multiBitTemporal(t, m, w));
    }
  }
  return specs;
}

std::vector<FaultModel> sameRegisterCampaigns(FaultDomain t) {
  std::vector<FaultModel> specs;
  specs.push_back(FaultModel::singleBit(t));
  for (const unsigned m : FaultModel::paperMaxMbf()) {
    specs.push_back(FaultModel::multiBitTemporal(t, m, WinSize::fixed(0)));
  }
  return specs;
}

std::vector<FaultModel> memoryScenarioModels() {
  const FaultDomain d = FaultDomain::MemoryData;
  return {
      FaultModel::singleBit(d),
      FaultModel::burstAdjacent(d, 2),
      FaultModel::burstAdjacent(d, 4),
      FaultModel::multiBitTemporal(d, 2, WinSize::fixed(0)),
      FaultModel::multiBitTemporal(d, 3, WinSize::fixed(10)),
      FaultModel::multiBitTemporal(d, 2, WinSize::random(2, 10)),
  };
}

}  // namespace onebit::fi
