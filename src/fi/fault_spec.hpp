// Fault model configuration: technique, max-MBF and win-size (§III-C).
//
// A FaultSpec describes one error *cluster* of the paper's systematic error
// space exploration: the fault-injection technique, the maximum number of
// bit flips per run (max-MBF), and the dynamic-instruction distance between
// consecutive injections (win-size), which may be a fixed value or a
// per-experiment random draw from a range (the RND(α,β) entries of Table I).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace onebit::fi {

enum class Technique : unsigned char {
  Read,   ///< inject-on-read (flip a source-register operand)
  Write,  ///< inject-on-write (flip the destination register)
};

std::string_view techniqueName(Technique t) noexcept;

/// The win-size parameter: fixed or RND(lo,hi) drawn once per experiment.
struct WinSize {
  enum class Kind : unsigned char { Fixed, Random } kind = Kind::Fixed;
  std::uint64_t value = 0;  ///< Fixed
  std::uint64_t lo = 0;     ///< Random, inclusive
  std::uint64_t hi = 0;     ///< Random, inclusive

  static WinSize fixed(std::uint64_t v) { return {Kind::Fixed, v, 0, 0}; }
  static WinSize random(std::uint64_t lo, std::uint64_t hi) {
    return {Kind::Random, 0, lo, hi};
  }

  /// Draw the concrete window for one experiment.
  std::uint64_t sample(util::Rng& rng) const;

  /// "0", "100", "RND(2-10)", ... (Table I spelling).
  [[nodiscard]] std::string label() const;

  bool operator==(const WinSize&) const = default;
};

struct FaultSpec {
  Technique technique = Technique::Read;
  unsigned maxMbf = 1;  ///< 1 = the single bit-flip model
  WinSize winSize{};    ///< meaningful only when maxMbf > 1
  /// Register width the bit-flip model assumes for INTEGER values. Our VM
  /// registers are 64-bit; the paper's LLVM integer values were mostly i32.
  /// Set to 32 to confine integer flips to the low 32 bits (the paper-
  /// faithful model; see bench/ablation_flip_width). f64 values always use
  /// the full 64 bits, as in the paper.
  unsigned flipWidth = 64;

  [[nodiscard]] bool isSingleBit() const noexcept { return maxMbf <= 1; }

  /// e.g. "read/single", "write/m=3,w=RND(2-10)".
  [[nodiscard]] std::string label() const;

  static FaultSpec singleBit(Technique t) { return {t, 1, {}}; }
  static FaultSpec multiBit(Technique t, unsigned maxMbf, WinSize w) {
    return {t, maxMbf, w};
  }

  /// Table I max-MBF values: 2,3,4,5,6,7,8,9,10,30.
  static const std::vector<unsigned>& paperMaxMbf();
  /// Table I win-size values: 0,1,4,RND(2-10),10,RND(11-100),100,
  /// RND(101-1000),1000.
  static const std::vector<WinSize>& paperWinSizes();
};

}  // namespace onebit::fi
