// The composable fault-model algebra: FaultModel = domain × pattern × spread.
//
// The paper's error model (§III-C) — register read/write flips with
// temporal multi-bit spread (max-MBF × win-size) — is one point in a larger
// space. A fi::FaultModel factors that space into three orthogonal axes:
//
//   * FaultDomain — WHERE a bit lives when it flips: a register value being
//     read (RegisterRead) or written (RegisterWrite) — the paper's two
//     techniques — the bytes of a committed memory store (MemoryData), or a
//     blind architectural register with no liveness knowledge (RandomValue,
//     the §III-A motivation model).
//   * BitPattern — WHICH bits flip per error: a single bit, the paper's
//     temporal multi-bit model (max-MBF single-bit events), or a spatially
//     adjacent burst of k bits in one event (the Rao et al. cluster model
//     for single-particle multi-bit upsets).
//   * TemporalSpread — WHEN follow-up events land: the Table I win-size,
//     fixed or RND(α,β) drawn once per experiment. Only meaningful for
//     MultiBitTemporal; win-size 0 reproduces the same-register mode.
//
// RegisterRead/RegisterWrite × SingleBit/MultiBitTemporal are bit-for-bit
// the semantics of the former closed FaultSpec type: same labels, same
// fault-plan RNG streams, same campaign-store keys.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace onebit::fi {

/// Where an injected bit lives. The first two enumerators keep the former
/// Technique enum's values (0, 1): persisted campaign keys hash the raw
/// value.
enum class FaultDomain : unsigned char {
  RegisterRead,   ///< inject-on-read (flip a source-register operand)
  RegisterWrite,  ///< inject-on-write (flip the destination register)
  MemoryData,     ///< flip bits of freshly stored bytes (store-event stream)
  RandomValue,    ///< blind architectural-register fault (§III-A motivation)
};

/// "inject-on-read", "inject-on-write", "memory-data", "random-value".
std::string_view domainName(FaultDomain d) noexcept;

/// The win-size parameter: fixed or RND(lo,hi) drawn once per experiment.
/// (`WinSize` below keeps the Table I name in paper-facing code.)
struct TemporalSpread {
  enum class Kind : unsigned char { Fixed, Random } kind = Kind::Fixed;
  std::uint64_t value = 0;  ///< Fixed
  std::uint64_t lo = 0;     ///< Random, inclusive
  std::uint64_t hi = 0;     ///< Random, inclusive

  static TemporalSpread fixed(std::uint64_t v) { return {Kind::Fixed, v, 0, 0}; }
  static TemporalSpread random(std::uint64_t lo, std::uint64_t hi) {
    return {Kind::Random, 0, lo, hi};
  }

  /// Draw the concrete window for one experiment.
  std::uint64_t sample(util::Rng& rng) const;

  /// "0", "100", "RND(2-10)", ... (Table I spelling).
  [[nodiscard]] std::string label() const;

  bool operator==(const TemporalSpread&) const = default;
};

using WinSize = TemporalSpread;

/// Which bits flip per error.
struct BitPattern {
  enum class Kind : unsigned char {
    SingleBit,        ///< one flipped bit per experiment
    MultiBitTemporal, ///< up to `count` (max-MBF) single-bit events, spaced
                      ///< by the model's TemporalSpread (win-size)
    BurstAdjacent,    ///< `count` spatially adjacent bits in ONE event
  };
  Kind kind = Kind::SingleBit;
  /// Flip budget: max-MBF for MultiBitTemporal, burst width k for
  /// BurstAdjacent, 1 for SingleBit.
  unsigned count = 1;

  static constexpr BitPattern singleBit() { return {Kind::SingleBit, 1}; }
  static constexpr BitPattern multiBitTemporal(unsigned maxMbf) {
    return {Kind::MultiBitTemporal, maxMbf};
  }
  static constexpr BitPattern burstAdjacent(unsigned k) {
    return {Kind::BurstAdjacent, k};
  }

  bool operator==(const BitPattern&) const = default;
};

struct FaultModel {
  FaultDomain domain = FaultDomain::RegisterRead;
  BitPattern pattern{};
  /// Dynamic-instruction distance between consecutive MultiBitTemporal
  /// events; ignored by the other patterns.
  TemporalSpread spread{};
  /// Register width the bit-flip model assumes for INTEGER values. Our VM
  /// registers are 64-bit; the paper's LLVM integer values were mostly i32.
  /// Set to 32 to confine integer flips to the low 32 bits (the paper-
  /// faithful model; see bench/ablation_flip_width). f64 values always use
  /// the full 64 bits, as in the paper. MemoryData ignores this knob: its
  /// flip locus is the stored bytes themselves (8 or 64 bits wide).
  unsigned flipWidth = 64;

  /// One flipped bit per experiment (the paper's single bit-flip model).
  [[nodiscard]] bool isSingleBit() const noexcept {
    return pattern.kind != BitPattern::Kind::BurstAdjacent &&
           pattern.count <= 1;
  }

  /// Whether fault plans sample a concrete window for this model (only the
  /// temporal pattern with a real flip budget spreads over time).
  [[nodiscard]] bool samplesWindow() const noexcept {
    return pattern.kind == BitPattern::Kind::MultiBitTemporal &&
           pattern.count > 1;
  }

  /// The paper-faithful cells of the algebra: register domains under the
  /// single/temporal patterns (the former FaultSpec space). Extension cells
  /// — new domains or the burst pattern — get their own campaign-store
  /// semantics version (see fi/campaign_store.hpp).
  [[nodiscard]] bool isPaperModel() const noexcept {
    return (domain == FaultDomain::RegisterRead ||
            domain == FaultDomain::RegisterWrite) &&
           pattern.kind != BitPattern::Kind::BurstAdjacent;
  }

  /// e.g. "read/single", "write/m=3,w=RND(2-10)", "mem/burst=4",
  /// "rand/single". Identical to the former FaultSpec::label() on the paper
  /// cells. flipWidth is deliberately not part of the label (as before).
  [[nodiscard]] std::string label() const;

  /// Inverse of label(): parse any label() spelling back into a model
  /// (flipWidth comes back as the default 64). Returns nullopt on anything
  /// else — a truncated label, trailing garbage, or an unknown domain.
  static std::optional<FaultModel> parse(std::string_view label);

  /// True when the two models denote the same fault semantics, ignoring
  /// flipWidth (which labels never carried). Models are compared in
  /// canonical form, so a degenerate m=1 temporal model matches the
  /// single-bit model it behaves as.
  [[nodiscard]] bool matches(const FaultModel& other) const noexcept;

  static FaultModel singleBit(FaultDomain d) {
    return {d, BitPattern::singleBit(), {}};
  }
  static FaultModel multiBitTemporal(FaultDomain d, unsigned maxMbf,
                                     TemporalSpread w) {
    return {d, BitPattern::multiBitTemporal(maxMbf), w};
  }
  /// A burst of k adjacent bits in one event. k <= 1 degenerates to the
  /// single-bit model (identical semantics, identical RNG stream).
  static FaultModel burstAdjacent(FaultDomain d, unsigned k) {
    if (k <= 1) return singleBit(d);
    return {d, BitPattern::burstAdjacent(k), {}};
  }

  /// Table I max-MBF values: 2,3,4,5,6,7,8,9,10,30.
  static const std::vector<unsigned>& paperMaxMbf();
  /// Table I win-size values: 0,1,4,RND(2-10),10,RND(11-100),100,
  /// RND(101-1000),1000.
  static const std::vector<TemporalSpread>& paperWinSizes();
};

}  // namespace onebit::fi
