// Fleet self-healing: a supervisor that keeps a local worker fleet alive.
//
// FleetWorker processes fail for three very different reasons, and the
// supervisor is what tells them apart:
//
//   transient crash — OOM kill, operator mistake, chaos testing. The
//     supervisor reaps the child and respawns it with capped exponential
//     backoff + jitter; the dead worker's lease expires (or its pid
//     vanishes) and the shard is simply re-run.
//   poison shard — a shard whose execution reliably kills its host process
//     (a workload bug, a resource bomb). Respawning forever would crash-loop
//     the whole fleet on one shard. The supervisor attributes each mid-lease
//     death to the shard range its worker had claimed (the lease records
//     name the worker, whose id carries the pid the supervisor just reaped);
//     after `poisonRetries` deaths on the same range it appends a durable
//     `quarantine` record, which every healthy worker skips — the fleet
//     converges on everything else and reports the quarantined ranges at
//     the end. A `--force` pass (FleetConfig::ignoreQuarantine, or the
//     in-process remainder pass of runSupervisedFleet) finishes them.
//   planned exit — Done / Stalled / Quarantined / shard-cap recycling, all
//     distinguished by exit code; only the cap triggers a respawn.
//
// Chaos kills the supervisor itself injects (chaosKillMs) are reaped like
// crashes but never attributed to a shard: the supervisor knows which pids
// it shot, so a chaos run quarantines exactly the genuinely poisonous
// shards and nothing else.
//
// Determinism contract unchanged: supervision is pure scheduling. Any mix
// of crashes, restarts, and quarantines yields the same shard records, and
// runSupervisedFleet's final in-process pass makes its results bit-identical
// to a solo CampaignSuite::run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fi/fleet.hpp"

namespace onebit::fi {

/// Knobs for one supervised local fleet.
struct FleetSupervisorConfig {
  std::size_t workers = 2;  ///< worker processes to keep alive
  /// Mid-lease deaths on one shard range before it is quarantined.
  std::size_t poisonRetries = 3;
  /// Restart backoff: min(backoffCapMs, backoffBaseMs << restarts) plus
  /// uniform jitter of up to backoffBaseMs, per worker slot.
  std::uint64_t backoffBaseMs = 50;
  std::uint64_t backoffCapMs = 2'000;
  /// Hard stop: a worker slot that crashed this many times stops being
  /// respawned (quarantine should normally end the loop much earlier).
  std::size_t maxRestartsPerWorker = 100;
  /// Chaos hook: when nonzero, SIGKILL one random live worker roughly this
  /// often (wall clock). Chaos victims are respawned immediately and never
  /// count toward poison detection.
  std::uint64_t chaosKillMs = 0;
  /// Per-worker shard cap; a worker exiting at the cap is respawned (the
  /// worker-side checkpoint recycle), not counted as a restart.
  std::size_t maxShardsPerWorker = 0;
  FleetConfig fleet;  ///< forwarded to every worker incarnation
};

/// One quarantined shard range, for end-of-run reporting.
struct QuarantinedRange {
  std::uint64_t key = 0;
  std::string workload;
  std::size_t first = 0;
  std::size_t count = 0;
  std::uint64_t crashes = 0;
};

/// Spawns, restarts, and quarantines for a fleet of local FleetWorker
/// processes over one store. See the file header for the state machine.
class FleetSupervisor {
 public:
  struct Report {
    std::size_t spawned = 0;   ///< worker processes forked, total
    std::size_t restarts = 0;  ///< respawns after a crash or error exit
    std::size_t crashes = 0;   ///< children reaped dead on a signal
    std::size_t chaosKills = 0;  ///< of which: shot by the chaos timer
    std::size_t quarantinedShards = 0;  ///< quarantine records written
    std::vector<QuarantinedRange> quarantined;  ///< final quarantine set
    /// Every submitted shard is recorded or quarantined: nothing is left
    /// that another worker incarnation could still make progress on.
    bool converged = false;
  };

  FleetSupervisor(std::string storePath, FleetSupervisorConfig config);

  /// Run the fleet to convergence: fork workers, reap/respawn/quarantine
  /// until every slot reached a terminal exit, then report. POSIX-only; on
  /// other platforms returns a default Report (converged = false) without
  /// spawning anything.
  Report run();

 private:
  std::string storePath_;
  FleetSupervisorConfig config_;
};

/// The supervised analog of runFleet(): submit `suite`'s cells to the store,
/// run a FleetSupervisor fleet over it, then finish ANY remainder — cells
/// makeCell() refused, shards lost to crashes, and quarantined shards (the
/// built-in `--force` pass) — with a resume-bound CampaignSuite that also
/// performs the merge. Results are bit-identical to `suite.run()` for any
/// crash/chaos/poison pattern, by the suite's resume contract. The report
/// (when non-null) receives the supervisor's Report so callers can surface
/// restarts and quarantined ranges.
std::vector<CampaignResult> runSupervisedFleet(
    const CampaignSuite& suite, SuiteConfig config,
    const std::string& storePath, const FleetSupervisorConfig& options = {},
    FleetSupervisor::Report* report = nullptr);

}  // namespace onebit::fi
