#include "fi/fault_plan.hpp"

namespace onebit::fi {

FaultPlan FaultPlan::forExperiment(const FaultModel& model,
                                   std::uint64_t candidateCount,
                                   std::uint64_t campaignSeed,
                                   std::uint64_t expIndex) {
  util::Rng rng(util::hashCombine(campaignSeed, expIndex));
  FaultPlan plan;
  plan.domain = model.domain;
  plan.pattern = model.pattern;
  plan.firstIndex = candidateCount > 0 ? rng.below(candidateCount) : 0;
  plan.window = model.samplesWindow() ? model.spread.sample(rng) : 0;
  plan.seed = rng.next();
  plan.flipWidth = model.flipWidth;
  return plan;
}

FaultPlan FaultPlan::atLocation(const FaultModel& model,
                                std::uint64_t firstIndex,
                                std::uint64_t campaignSeed,
                                std::uint64_t expIndex) {
  util::Rng rng(util::hashCombine(campaignSeed, expIndex));
  (void)rng.next();  // keep stream layout aligned with forExperiment
  FaultPlan plan;
  plan.domain = model.domain;
  plan.pattern = model.pattern;
  plan.firstIndex = firstIndex;
  plan.window = model.samplesWindow() ? model.spread.sample(rng) : 0;
  plan.seed = rng.next();
  plan.flipWidth = model.flipWidth;
  return plan;
}

}  // namespace onebit::fi
