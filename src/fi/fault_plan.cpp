#include "fi/fault_plan.hpp"

namespace onebit::fi {

FaultPlan FaultPlan::forExperiment(const FaultSpec& spec,
                                   std::uint64_t candidateCount,
                                   std::uint64_t campaignSeed,
                                   std::uint64_t expIndex) {
  util::Rng rng(util::hashCombine(campaignSeed, expIndex));
  FaultPlan plan;
  plan.technique = spec.technique;
  plan.maxMbf = spec.maxMbf;
  plan.firstIndex = candidateCount > 0 ? rng.below(candidateCount) : 0;
  plan.window = spec.maxMbf > 1 ? spec.winSize.sample(rng) : 0;
  plan.seed = rng.next();
  plan.flipWidth = spec.flipWidth;
  return plan;
}

FaultPlan FaultPlan::atLocation(const FaultSpec& spec,
                                std::uint64_t firstIndex,
                                std::uint64_t campaignSeed,
                                std::uint64_t expIndex) {
  util::Rng rng(util::hashCombine(campaignSeed, expIndex));
  (void)rng.next();  // keep stream layout aligned with forExperiment
  FaultPlan plan;
  plan.technique = spec.technique;
  plan.maxMbf = spec.maxMbf;
  plan.firstIndex = firstIndex;
  plan.window = spec.maxMbf > 1 ? spec.winSize.sample(rng) : 0;
  plan.seed = rng.next();
  plan.flipWidth = spec.flipWidth;
  return plan;
}

}  // namespace onebit::fi
