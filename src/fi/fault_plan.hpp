// A FaultPlan fixes everything random about one fault-injection experiment:
// where the first error lands, the concrete win-size draw, and the RNG
// stream that picks operands and bit positions for each subsequent flip.
// Plans are pure data — the same plan always reproduces the same run.
#pragma once

#include <cstdint>

#include "fi/fault_model.hpp"

namespace onebit::fi {

struct FaultPlan {
  FaultDomain domain = FaultDomain::RegisterRead;
  BitPattern pattern{};
  /// Position of the first injection in the domain's candidate stream of
  /// the golden run — LLFI's "time" coordinate. RegisterRead/RegisterWrite
  /// count read/write candidates, MemoryData counts committed store events,
  /// and RandomValue counts dynamic instructions (the blind model lands at
  /// a point in time, not at a liveness-aware candidate).
  std::uint64_t firstIndex = 0;
  /// Concrete dynamic-instruction distance between consecutive
  /// MultiBitTemporal events (already sampled if the model used RND(α,β)).
  /// 0 = all flips target the same register of the same dynamic instruction.
  std::uint64_t window = 0;
  /// Seed of the stream choosing operand positions and bit positions.
  std::uint64_t seed = 0;
  /// Bit width flips are confined to (see FaultModel::flipWidth).
  unsigned flipWidth = 64;

  /// Build the plan for experiment `expIndex` of a campaign: draws the first
  /// injection index uniformly from [0, candidateCount) and samples the
  /// window, all from a deterministic (campaignSeed, expIndex) stream.
  static FaultPlan forExperiment(const FaultModel& model,
                                 std::uint64_t candidateCount,
                                 std::uint64_t campaignSeed,
                                 std::uint64_t expIndex);

  /// Build a plan with a pinned first-injection location (used by the
  /// transition study, §IV-C3, which replays multi-bit experiments from the
  /// exact locations of earlier single-bit experiments).
  static FaultPlan atLocation(const FaultModel& model, std::uint64_t firstIndex,
                              std::uint64_t campaignSeed,
                              std::uint64_t expIndex);
};

}  // namespace onebit::fi
