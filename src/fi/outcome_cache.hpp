// Per-cell outcome-equivalence cache: the dynamic pruning layer.
//
// The paper prunes the error space statically (def/use analysis, Table IV);
// AFL-style fuzzers prune dynamically with a cheap execution checksum. This
// cache is the dynamic variant for fault-injection campaigns: every pruned
// experiment pauses at the first hash-grid boundary after its injector hook
// is exhausted and looks up (boundary, state hash) here. Two experiments
// that collide have bit-identical machine state at the same dynamic point,
// hence bit-identical hook-free continuations — so the first one's final
// (outcome, trap, instructions) triple is simply replayed for the second,
// skipping the whole tail of the run.
//
// One cache serves exactly one campaign cell (one workload × model ×
// experiments × seed): entries are only transferable between runs of the
// same cell, which is why persistence keys them with
// CampaignStore::outcomeCacheKey(campaignKey) — the campaign key already
// binds the workload fingerprint (and with it the faulty-run limits), the
// model, the seed, and the experiment semantics version.
//
// Entry values are pure functions of their (boundary, hash) key modulo
// 64-bit hash collisions, so concurrent insert races are idempotent and
// hit/miss ordering can never change campaign results — only wall-clock and
// the hit counters (which are kept out of all result data for exactly that
// reason).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <utility>

#include "fi/campaign_store.hpp"
#include "stats/outcome_counts.hpp"
#include "vm/trap.hpp"

namespace onebit::fi {

class OutcomeCache {
 public:
  /// The replayable tail of one experiment: everything an ExperimentResult
  /// needs except the per-experiment activation count.
  struct Entry {
    stats::Outcome outcome = stats::Outcome::Benign;
    vm::TrapKind trap = vm::TrapKind::None;
    std::uint64_t instructions = 0;
  };

  OutcomeCache() = default;
  OutcomeCache(const OutcomeCache&) = delete;
  OutcomeCache& operator=(const OutcomeCache&) = delete;

  /// Persist every future insert() to `store` as an "outcome" record under
  /// `cacheKey` (CampaignStore::outcomeCacheKey of the cell's campaign
  /// key). The store must outlive this cache.
  void bindStore(CampaignStore* store, std::uint64_t cacheKey);

  /// Preload every entry recorded under `cacheKey` in `store` — the warm
  /// cache of a resumed campaign. Returns the number of entries loaded.
  std::size_t warmFrom(const CampaignStore& store, std::uint64_t cacheKey);

  /// Look up the entry for (boundary, hash); nullopt on a miss.
  [[nodiscard]] std::optional<Entry> find(std::uint64_t boundary,
                                          std::uint64_t hash) const;

  /// Record the outcome computed for (boundary, hash), appending it to the
  /// bound store (if any). First insert wins; duplicates carry identical
  /// values by construction.
  void insert(std::uint64_t boundary, std::uint64_t hash, const Entry& entry);

  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::pair<std::uint64_t, std::uint64_t>, Entry> entries_;
  CampaignStore* record_ = nullptr;
  std::uint64_t cacheKey_ = 0;
};

}  // namespace onebit::fi
