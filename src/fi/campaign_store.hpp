// Persistent campaign results store: checkpoint/resume for long campaigns.
//
// The store is an append-only JSONL file. Every record is one line, written
// and flushed atomically from the writer's point of view, so a campaign
// killed at any instant loses at most the shard it was computing — never a
// recorded one. Records are self-describing (versioned, carrying the fault
// spec label, seed, and campaign geometry) so a store file is meaningful on
// its own, greppable, and loadable by plotting scripts.
//
// Two record kinds share the file:
//
//   shard record (kind "shard") — one completed campaign shard:
//     {"v":1,"kind":"shard","key":"0x<16 hex>","workload":"qsort",
//      "spec":"read/single","seed":"0x<16 hex>","experiments":400,
//      "candidates":1234,"shard":3,"first":96,"count":32,
//      "outcomes":[b,d,h,n,s],"hist":[[o,k,c],...]}
//   `key` is the campaign key (below); `outcomes` is the shard's
//   OutcomeCounts in Outcome declaration order; `hist` is the sparse
//   activation histogram: [outcome index, activation bucket, count] triples
//   for the non-zero cells only. Full-range 64-bit fields (key, seed,
//   src_hash) are hex strings so double-based JSON consumers (jq, JS)
//   cannot silently round them.
//
//   workload record (kind "workload") — one profiled Table II program:
//     {"v":1,"kind":"workload","name":"qsort","suite":"MiBench",
//      "package":"automotive","src_hash":"0x<16 hex>","minic_loc":57,
//      "ir_instrs":210,"dyn_instrs":51234,"cand_read":30321,
//      "cand_write":20117,"cand_store":9876}
//
//   outcome record (kind "outcome") — one outcome-equivalence cache entry
//   (fi/outcome_cache.hpp), so resumed pruned campaigns keep their warm
//   cache and hit rates:
//     {"v":1,"kind":"outcome","key":"0x<16 hex>","boundary":4096,
//      "hash":"0x<16 hex>","outcome":0,"trap":0,"instructions":51234}
//   `key` is outcomeCacheKey(campaign key) — derived from, but never equal
//   to, a campaign key, so outcome records can never collide with shard
//   records and paper-cell results are untouched by pruning.
//
// Two further kinds turn the store into the campaign fleet's durable work
// queue (fi/fleet.hpp):
//
//   cell record (kind "cell") — one submitted campaign cell, self-describing
//   enough for a worker process to rebuild the workload and verify it
//   reproduces the submitting broker's campaign key:
//     {"v":1,"kind":"cell","key":"0x<16 hex>","workload":"qsort",
//      "spec":"read/single","flip_width":32,"experiments":400,
//      "seed":"0x<16 hex>","shard_size":16,"hang_factor":50,
//      "dyn_instrs":51234}
//   `shard_size` is the RESOLVED per-cell shard size: the submitting broker
//   fixes the shard geometry once, so every worker computes identical
//   (first, count) ranges. `dyn_instrs` is the golden dynamic instruction
//   count, carried so workers can cost-order claims without compiling every
//   cell first.
//
//   lease record (kind "lease") — one claim on a shard range:
//     {"v":1,"kind":"lease","key":"0x<16 hex>","first":96,"count":32,
//      "worker":"1234:3f2a","epoch":1,"deadline":1754700000000}
//   `epoch` is the claim generation for that (key, range): a worker
//   re-leasing an abandoned shard appends epoch+1, heartbeat renewals
//   re-append the same epoch with a pushed-out `deadline` (util::wallClockMs
//   milliseconds). The NEWEST lease per (key, range) — highest epoch, latest
//   record within an epoch — is the live one; a lease is superseded the
//   moment a shard record for its range exists. Leases are pure scheduling:
//   results are assembled from shard records alone, so a stale, raced, or
//   double-claimed lease can waste work but never change an outcome.
//   A completion renewal may carry `cost_ms` — the observed wall-clock of
//   running the shard — which adaptive lease deadlines (fi/fleet.hpp)
//   aggregate per cell. Cost lives in lease records, never shard records,
//   because wall-clock is nondeterministic and shard records must stay
//   byte-identical across runs.
//
//   quarantine record (kind "quarantine") — one poison-shard verdict from
//   the fleet supervisor (fi/supervisor.hpp): workers leasing this range
//   died `crashes` times mid-lease, so healthy workers skip it and the
//   fleet converges on everything else instead of crash-looping:
//     {"v":1,"kind":"quarantine","key":"0x<16 hex>","first":96,"count":32,
//      "crashes":3,"worker":"1234:3f2a","reason":"worker died mid-lease"}
//   The newest record per (key, range) wins (re-quarantining updates the
//   crash count). A shard record for the range supersedes it — the work got
//   done after all (e.g. by a `--force` pass) — and compact() then drops it.
//
// Writer concurrency: by default a store instance assumes it is the ONLY
// writer process (appends are dedup'd against the in-memory index and
// buffered through stdio — the original single-writer design). Fleet-shared
// stores must be opened with WriteMode::Atomic: every record is then written
// with one O_APPEND write() + fdatasync under an advisory sibling ".lock"
// file (util::FileLock), so concurrent worker processes can never tear or
// interleave a line, and a line half-written by a crashed worker is healed
// (newline-terminated) before the next append instead of swallowing it.
// Cross-process appends bypass each other's in-memory dedup, so a shared
// store accumulates duplicate records; load() keeps the first of each and
// compact() drops the rest.
//
// Campaign key: a 64-bit hash of everything the determinism contract says a
// campaign result depends on — the full FaultModel (technique, max-MBF,
// win-size, flip width), experiment count, master seed — plus the
// workload's fingerprint (golden output, dynamic instruction count,
// candidate counts), which binds records to the observable behavior of the
// injected program. Shard records are matched by (key, first, count), so
// resuming reuses exactly the shards whose experiment ranges the current
// shard geometry reproduces; records written under a different shard size
// are ignored (and harmlessly re-run) rather than risk mis-merging.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "fi/campaign.hpp"
#include "util/file_lock.hpp"
#include "util/jsonl.hpp"

namespace onebit::fi {

class CampaignStore {
 public:
  /// How appends reach the disk. Buffered is the original single-writer
  /// design (stdio stream, flushed per line); Atomic is for fleet stores
  /// shared by several writer processes — each record goes out as one
  /// O_APPEND write() + fdatasync under the sibling "<path>.lock" advisory
  /// file lock (util::AtomicAppend), and fileLock() exposes that lock so
  /// callers can make read-decide-append sequences (lease claims) atomic
  /// across processes.
  enum class WriteMode { Buffered, Atomic };
  /// Current record schema version; bump when the format changes shape.
  static constexpr std::uint64_t kFormatVersion = 1;

  /// Version of the experiment semantics, folded into every campaign key.
  /// Bump on ANY result-affecting code change (fault-plan derivation, RNG,
  /// injection hooks, outcome classification, VM behavior): records written
  /// by the old semantics must not resume into the new ones, or a "resumed"
  /// campaign would mix results no uninterrupted run could produce.
  static constexpr std::uint64_t kResultSemanticsVersion = 1;

  /// Semantics version of the EXTENSION cells of the fault-model algebra —
  /// the MemoryData/RandomValue domains and the BurstAdjacent pattern
  /// (everything FaultModel::isPaperModel() excludes). Folded into those
  /// campaign keys on top of kResultSemanticsVersion, so extension
  /// semantics can evolve (bump this) without invalidating the paper
  /// cells' recorded results, and extension records can never collide with
  /// a paper-cell key.
  static constexpr std::uint64_t kExtendedSemanticsVersion = 1;

  /// Semantics version of the outcome-equivalence pruning layer (state-hash
  /// definition, boundary placement, cache soundness rules). Folded into
  /// every outcome-cache key: bump it whenever the hash function or pruning
  /// semantics change, so stale cache entries are orphaned instead of
  /// replayed into results they no longer describe.
  static constexpr std::uint64_t kPruneSemanticsVersion = 1;

  /// Aggregates of one recorded shard.
  struct ShardAggregate {
    stats::OutcomeCounts counts;
    ActivationHistogram hist{};
  };

  /// Campaign-level metadata carried by each shard record (for humans and
  /// plotting scripts; the key alone drives matching).
  struct CampaignMeta {
    std::uint64_t key = 0;
    std::string workload;   ///< caller-supplied name; may be empty
    std::string specLabel;  ///< FaultModel::label()
    std::uint64_t seed = 0;
    std::size_t experiments = 0;
    std::uint64_t candidates = 0;
  };

  /// One profiled Table II program (bench_table2_candidates).
  struct WorkloadRecord {
    std::string name;
    std::string suite;
    std::string package;
    /// util::hashBytes of the program's MiniC source. Consumers must treat
    /// a record whose hash differs from the current source as stale (the
    /// workload-record analog of the campaign key).
    std::uint64_t sourceHash = 0;
    std::uint64_t minicLoc = 0;
    std::uint64_t irInstrs = 0;
    std::uint64_t dynInstrs = 0;
    std::uint64_t candRead = 0;
    std::uint64_t candWrite = 0;
    std::uint64_t candStore = 0;

    bool operator==(const WorkloadRecord&) const = default;
  };

  /// One submitted fleet campaign cell (kind "cell"): everything a worker
  /// process needs to rebuild the cell's workload and verify that its build
  /// reproduces `key` before running a single experiment.
  struct CellRecord {
    std::uint64_t key = 0;     ///< campaignKey the submitting broker computed
    std::string workload;      ///< progs registry name (worker resolver input)
    std::string spec;          ///< FaultModel::label()
    unsigned flipWidth = 64;   ///< not in the label; carried explicitly
    std::size_t experiments = 0;
    std::uint64_t seed = 0;
    std::size_t shardSize = 0;   ///< RESOLVED (> 0): fixes fleet-wide geometry
    std::uint64_t hangFactor = 0;  ///< Workload hang budget multiplier
    std::uint64_t dynInstrs = 0;   ///< golden dynamic instrs (cost ordering)

    bool operator==(const CellRecord&) const = default;

    [[nodiscard]] std::size_t shardCount() const noexcept {
      return shardSize == 0 ? 0 : (experiments + shardSize - 1) / shardSize;
    }
    [[nodiscard]] std::size_t shardFirst(std::size_t shard) const noexcept {
      return shard * shardSize;
    }
    [[nodiscard]] std::size_t shardExperiments(
        std::size_t shard) const noexcept {
      const std::size_t first = shardFirst(shard);
      return first >= experiments
                 ? 0
                 : (experiments - first < shardSize ? experiments - first
                                                    : shardSize);
    }
  };

  /// One shard-range claim (kind "lease"). The newest lease per
  /// (key, first, count) — highest epoch, then latest record — is the live
  /// one; see the file header for the protocol.
  struct LeaseRecord {
    std::size_t first = 0;
    std::size_t count = 0;
    std::string worker;        ///< "<pid>:<hex nonce>" worker id
    std::uint64_t epoch = 0;   ///< claim generation, >= 1
    std::uint64_t deadlineMs = 0;  ///< heartbeat deadline, wallClockMs
    /// Observed wall-clock of running the shard, stamped into the worker's
    /// completion renewal (0 = not a completion). Feeds adaptive deadlines;
    /// serialized as "cost_ms" only when nonzero, so pre-cost stores and
    /// writers interoperate unchanged.
    std::uint64_t costMs = 0;

    bool operator==(const LeaseRecord&) const = default;
  };

  /// One poison-shard verdict (kind "quarantine"): the supervisor observed
  /// `crashes` worker deaths mid-lease on this range. Newest per
  /// (key, first, count) wins; a shard record for the range supersedes it.
  struct QuarantineRecord {
    std::size_t first = 0;
    std::size_t count = 0;
    std::uint64_t crashes = 0;  ///< cumulative mid-lease worker deaths
    std::string worker;         ///< last crashing worker id (diagnostic)
    std::string reason;         ///< human-readable diagnostic

    bool operator==(const QuarantineRecord&) const = default;
  };

  /// One outcome-equivalence cache entry (see fi/outcome_cache.hpp).
  struct OutcomeRecord {
    std::uint64_t boundary = 0;  ///< hash-grid boundary (dynamic instructions)
    std::uint64_t hash = 0;      ///< vm::Machine::stateHash() at the boundary
    stats::Outcome outcome = stats::Outcome::Benign;
    vm::TrapKind trap = vm::TrapKind::None;
    std::uint64_t instructions = 0;  ///< final faulty instruction count
  };

  struct LoadStats {
    std::size_t shardRecords = 0;     ///< accepted shard records
    std::size_t workloadRecords = 0;  ///< accepted workload records
    std::size_t outcomeRecords = 0;   ///< accepted outcome-cache records
    std::size_t cellRecords = 0;      ///< accepted fleet cell records
    std::size_t leaseRecords = 0;     ///< accepted fleet lease records
    std::size_t quarantineRecords = 0;  ///< accepted quarantine records
    std::size_t malformed = 0;  ///< unparseable or integrity-failing lines
                                ///< (incl. a torn final line)
    std::size_t duplicates = 0;  ///< re-recorded shards (first one wins)
    /// Of `malformed`: lines that parsed as JSON but carried an unknown
    /// record kind or a foreign format version — possibly a future format
    /// (fsck preserves them), as opposed to actual damage.
    std::size_t unknownKinds = 0;

    /// Non-empty lines this read consumed (every line lands in exactly one
    /// accepted/malformed/duplicate bucket).
    [[nodiscard]] std::size_t lines() const noexcept {
      return shardRecords + workloadRecords + outcomeRecords + cellRecords +
             leaseRecords + quarantineRecords + malformed + duplicates;
    }

    LoadStats& operator+=(const LoadStats& o) noexcept {
      shardRecords += o.shardRecords;
      workloadRecords += o.workloadRecords;
      outcomeRecords += o.outcomeRecords;
      cellRecords += o.cellRecords;
      leaseRecords += o.leaseRecords;
      quarantineRecords += o.quarantineRecords;
      malformed += o.malformed;
      duplicates += o.duplicates;
      unknownKinds += o.unknownKinds;
      return *this;
    }
  };

  struct CompactStats {
    std::size_t shardRecords = 0;     ///< surviving shard records
    std::size_t workloadRecords = 0;  ///< surviving workload records
    std::size_t outcomeRecords = 0;   ///< surviving outcome-cache records
    std::size_t cellRecords = 0;      ///< surviving fleet cell records
    std::size_t leaseRecords = 0;     ///< surviving (still-live) leases
    std::size_t quarantineRecords = 0;  ///< surviving quarantine records
    std::size_t droppedDuplicates = 0;  ///< superseded records dropped
    std::size_t droppedLeases = 0;  ///< expired/superseded leases dropped
    std::size_t droppedQuarantines = 0;  ///< superseded quarantines dropped
    std::size_t droppedMalformed = 0;   ///< torn/invalid lines dropped
    bool rewritten = false;  ///< false = file was already canonical
  };

  /// What `fsck` found in (and, in repair mode, removed from) a store file.
  /// Taxonomy: a line is exactly one of valid, a benign exact duplicate of
  /// an earlier value record, the torn unparseable tail, mid-file garbage,
  /// an integrity failure (parses as JSON but fails the kind's validation),
  /// an unknown kind/version (preserved verbatim — it may be a future
  /// format), or a conflict (same identity as an earlier value record but
  /// different bytes — the earlier record wins, matching load()'s
  /// first-wins rule).
  struct FsckStats {
    std::size_t validRecords = 0;     ///< well-formed records kept
    std::size_t duplicateLines = 0;   ///< byte-identical value-record reruns
    std::size_t tornTail = 0;         ///< unparseable unterminated last line
    std::size_t garbage = 0;          ///< mid-file unparseable lines
    std::size_t integrityFailures = 0;  ///< parse but fail validation
    std::size_t unknownKinds = 0;     ///< unknown kind/version (kept)
    std::size_t conflicts = 0;        ///< same identity, different bytes
    std::size_t quarantinedLines = 0;  ///< lines bound for the sidecar
    bool rewritten = false;           ///< repair actually rewrote the file

    /// Evidence of corruption (distinct from benign duplicates): these are
    /// the conditions fsck_store's exit code reports.
    [[nodiscard]] bool corrupt() const noexcept {
      return tornTail + garbage + integrityFailures + conflicts != 0;
    }
    /// Nothing for repair to do: the file is byte-for-byte canonical
    /// already (unknown kinds are preserved, so they do not count).
    [[nodiscard]] bool clean() const noexcept {
      return !corrupt() && duplicateLines == 0;
    }
  };

  /// Opens (lazily) the store at `path`. The file need not exist yet; the
  /// first append creates it. Pass WriteMode::Atomic for a store shared by
  /// several writer processes (see the enum).
  explicit CampaignStore(std::string path,
                         WriteMode mode = WriteMode::Buffered)
      : path_(std::move(path)), mode_(mode) {
    if (mode_ == WriteMode::Atomic) {
      fileLock_ = std::make_unique<util::FileLock>(path_ + ".lock");
    }
  }

  CampaignStore(const CampaignStore&) = delete;
  CampaignStore& operator=(const CampaignStore&) = delete;

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// The campaign key binding a record to (model, experiments, seed,
  /// workload identity). `workloadFingerprint` is
  /// Workload::fingerprintFor(model) — a hash of golden output, dynamic
  /// instruction count, candidate counts (including the store-event stream
  /// for extension cells), and the faulty-run instruction budget — so
  /// editing the injected program (or its hang budget) invalidates its
  /// records even when a single summary statistic happens to survive the
  /// edit. See the file header for the rationale.
  static std::uint64_t campaignKey(const FaultModel& model,
                                   std::size_t experiments,
                                   std::uint64_t seed,
                                   std::uint64_t workloadFingerprint) noexcept;

  /// The key outcome-cache records are stored under for a campaign cell:
  /// a salted rehash of the cell's campaign key chained with
  /// kPruneSemanticsVersion. Deriving (rather than reusing) the campaign key
  /// keeps the two record populations disjoint, and the version fold orphans
  /// cached outcomes whenever pruning semantics change.
  static std::uint64_t outcomeCacheKey(std::uint64_t campaignKey) noexcept;

  /// Read all records currently on disk into the in-memory index. Missing
  /// file loads as empty. Malformed lines are counted, never fatal: the
  /// torn last line of a killed writer must not poison the store.
  LoadStats load();

  /// Incrementally index records OTHER processes appended since the last
  /// load()/refresh(): reads from the previous end offset, so polling a
  /// large fleet store costs only the new bytes. An unterminated final line
  /// (a record mid-append, or a crashed writer's residue) is left for the
  /// next refresh rather than counted malformed. Falls back to a full
  /// re-read when the file shrank (someone compacted it) — safe because
  /// indexing is idempotent and first-wins. In Atomic mode the file lock is
  /// held for the read, so a refresh under fileLock() observes every record
  /// of every completed claim sequence.
  LoadStats refresh();

  /// Rewrite the JSONL store at `path` in place, keeping only the newest
  /// record per (campaign key, shard range) and per workload name, and
  /// dropping torn or integrity-failing lines — the maintenance pass for a
  /// store grown by interrupted runs or by several concurrent writer
  /// processes (whose appends bypass each other's in-memory dedup index).
  /// Resuming from a compacted store is identical to resuming from the
  /// original: the surviving records are exactly the ones load() would
  /// index. Crash-safe (temp file + rename); a file that is already
  /// canonical is left untouched byte for byte. Returns nullopt on I/O
  /// failure (the original file is preserved). Do not run it on a store an
  /// open CampaignStore instance is appending to.
  ///
  /// Fleet records: cells keep the newest per key; leases keep the newest
  /// per (key, range) UNLESS superseded by a shard record for that range
  /// or — when `nowMs` is nonzero (pass util::wallClockMs()) — expired
  /// (deadline <= nowMs). Pass nowMs = 0 to keep every unsuperseded lease
  /// regardless of age (time-independent compaction, e.g. in tests).
  /// Quarantine records keep the newest per (key, range) unless a shard
  /// record for the range exists (the shard got finished after all).
  static std::optional<CompactStats> compact(const std::string& path,
                                             std::uint64_t nowMs = 0);

  /// Classify every line of the store at `path` (see FsckStats for the
  /// taxonomy) and, when `repair` is true and the file is not clean(),
  /// rewrite it crash-safely (temp + rename) keeping the surviving lines
  /// BYTE-IDENTICAL in file order — so loading (and resuming from) the
  /// repaired file indexes exactly the records load() would have accepted
  /// from the original. Unrepairable lines (torn tail, garbage, integrity
  /// failures, conflict losers) are appended to the "<path>.quarantined"
  /// sidecar instead of silently dropped; unknown kinds/versions are
  /// preserved in place. A missing file fscks as clean and empty. Returns
  /// nullopt on I/O failure (the original file is preserved). Like
  /// compact(), do not run repair on a store an open instance is appending
  /// to.
  static std::optional<FsckStats> fsck(const std::string& path, bool repair);

  /// Append one completed shard (thread-safe; serialized internally). The
  /// line is flushed before the call returns. A shard already present in
  /// the in-memory index (loaded or appended earlier through this instance)
  /// is skipped, so record-only reruns do not balloon the file. Returns
  /// false on I/O error.
  bool appendShard(const CampaignMeta& meta, std::size_t shardIndex,
                   std::size_t firstExperiment, std::size_t experimentCount,
                   const ShardAggregate& aggregate);

  /// Append one workload profile (thread-safe). An identical record already
  /// in the index is skipped. Returns false on I/O error.
  bool appendWorkload(const WorkloadRecord& record);

  /// Append one outcome-cache entry under `cacheKey` (thread-safe). An entry
  /// already indexed for (cacheKey, boundary, hash) is skipped — entry
  /// values are pure functions of their key, so the first record is as good
  /// as any later one. Returns false on I/O error.
  bool appendOutcome(std::uint64_t cacheKey, const OutcomeRecord& record);

  /// Visit every outcome-cache entry recorded under `cacheKey` (the warm
  /// start of a resumed pruned campaign). Do not call appendOutcome from
  /// inside the callback (the store lock is held).
  void forEachOutcome(
      std::uint64_t cacheKey,
      const std::function<void(const OutcomeRecord&)>& fn) const;

  /// Look up a recorded shard by campaign key and exact experiment range.
  /// Returns nullptr when absent. Pointers stay valid until the next
  /// load() or shrink-triggered refresh() (the only operations that evict).
  [[nodiscard]] const ShardAggregate* findShard(
      std::uint64_t key, std::size_t firstExperiment,
      std::size_t experimentCount) const;

  /// Total experiments recorded for a campaign key (for progress reports).
  [[nodiscard]] std::size_t recordedExperiments(std::uint64_t key) const;

  /// Look up a profiled workload by name; nullptr when absent.
  [[nodiscard]] const WorkloadRecord* findWorkload(
      std::string_view name) const;

  /// Append one fleet cell submission (thread-safe). A cell already indexed
  /// under the same key with identical fields is skipped; differing fields
  /// under the same key replace the index entry (newest wins — the key
  /// binds the result-relevant fields, so a difference can only be in
  /// scheduling metadata like shard_size). Returns false on I/O error or an
  /// invalid record (shardSize or experiments of 0).
  bool appendCell(const CellRecord& record);

  /// Append one lease record for a shard range of campaign `key`
  /// (thread-safe). Always writes (claims, renewals, and re-leases all
  /// matter), except when the identical record is already the indexed
  /// newest. Returns false on I/O error or an invalid record (count or
  /// epoch of 0).
  bool appendLease(std::uint64_t key, const LeaseRecord& record);

  /// Look up a submitted cell by campaign key; nullptr when absent. Valid
  /// until the next append/refresh/load.
  [[nodiscard]] const CellRecord* findCell(std::uint64_t key) const;

  /// All submitted cells, in first-submission order (fleet workers scan
  /// these; the order is part of no contract but keeps logs readable).
  [[nodiscard]] std::vector<CellRecord> cells() const;

  /// The live (newest) lease for (key, first, count), if any.
  [[nodiscard]] std::optional<LeaseRecord> latestLease(
      std::uint64_t key, std::size_t first, std::size_t count) const;

  /// Visit the live lease of every leased shard range of campaign `key`.
  /// The store mutex is held across the callback: do not call ANY method of
  /// this store from inside it (not even const readers like findShard —
  /// the mutex is not recursive, so that self-deadlocks). Snapshot into a
  /// local vector and post-process instead.
  void forEachLease(std::uint64_t key,
                    const std::function<void(const LeaseRecord&)>& fn) const;

  /// Append one quarantine verdict for a shard range of campaign `key`
  /// (thread-safe). Skipped when the identical record is already the
  /// indexed newest. Returns false on I/O error or an invalid record
  /// (count of 0).
  bool appendQuarantine(std::uint64_t key, const QuarantineRecord& record);

  /// The live (newest) quarantine for (key, first, count), if any.
  [[nodiscard]] std::optional<QuarantineRecord> findQuarantine(
      std::uint64_t key, std::size_t first, std::size_t count) const;

  /// Visit every quarantined shard range of campaign `key`. Same no-reentry
  /// contract as forEachLease (the store mutex is held).
  void forEachQuarantine(
      std::uint64_t key,
      const std::function<void(const QuarantineRecord&)>& fn) const;

  /// A shard-range key: (first experiment, experiment count).
  using Range = std::pair<std::size_t, std::size_t>;

  /// A self-contained copy of the in-memory index, taken under ONE mutex
  /// acquisition — the sanctioned read surface for external consumers
  /// (src/analytics/): unlike the forEach* visitors above, nothing of the
  /// store is held while a Snapshot is processed, so readers can never
  /// trip the no-reentry contract, block appending writers, or observe a
  /// half-indexed refresh. The copy is immutable and survives any later
  /// load()/refresh()/append on the source store.
  struct Snapshot {
    /// Everything indexed under one campaign key. `meta` is stamped from
    /// the first shard record seen (or, failing that, carries only the key
    /// with `experiments == 0` — a campaign known so far only through
    /// scheduling records).
    struct Campaign {
      CampaignMeta meta;
      std::optional<CellRecord> cell;  ///< fleet submission, when present
      std::map<Range, ShardAggregate> shards;       ///< first-wins
      std::map<Range, LeaseRecord> leases;          ///< newest per range
      std::map<Range, QuarantineRecord> quarantines;  ///< newest per range
    };
    std::map<std::uint64_t, Campaign> campaigns;  ///< key-ordered
    std::map<std::string, WorkloadRecord, std::less<>> workloads;
    /// Outcome-cache entry count per cache key (analytics only needs the
    /// volume; resume reads entries through forEachOutcome).
    std::map<std::uint64_t, std::size_t> outcomeEntries;
  };

  /// Copy the current index (see Snapshot). Safe to call on a store other
  /// processes are appending to — it reads only what load()/refresh() has
  /// already indexed; poll refresh() first for the newest records.
  [[nodiscard]] Snapshot snapshot() const;

  /// The cross-process advisory lock of an Atomic-mode store (nullptr in
  /// Buffered mode). Hold it (std::lock_guard) around read-decide-append
  /// sequences such as lease claims; individual appends self-lock.
  [[nodiscard]] util::FileLock* fileLock() noexcept {
    return fileLock_.get();
  }

  /// errno of the last failed append through this store (0 after a
  /// success). Meaningful on the thread that just observed an append
  /// returning false.
  [[nodiscard]] int lastWriteErrno() const noexcept {
    return lastWriteErrno_.load(std::memory_order_relaxed);
  }

  /// True when the last failed append hit an out-of-space condition
  /// (ENOSPC/EDQUOT) — a pause-and-retry state, not a hard error: fleet
  /// workers park on their heartbeat instead of exiting, because the disk
  /// may drain (log rotation, another store compacting) without any code
  /// change.
  [[nodiscard]] bool lastWriteOutOfSpace() const noexcept;

 private:
  using ShardRange = Range;  ///< (first, count)
  using OutcomeKey = std::pair<std::uint64_t, std::uint64_t>;  ///< (bnd, hash)

  bool indexShard(std::uint64_t key, ShardRange range, ShardAggregate agg);
  bool indexCell(const CellRecord& record);
  bool indexLease(std::uint64_t key, const LeaseRecord& record);
  bool indexQuarantine(std::uint64_t key, const QuarantineRecord& record);
  void clearIndex();
  LoadStats readInto(std::uint64_t offset, bool consumeTail);
  bool writeRecord(const util::Json& record);

  std::string path_;
  WriteMode mode_ = WriteMode::Buffered;
  mutable std::mutex mutex_;
  std::unique_ptr<util::JsonlWriter> writer_;  ///< opened on first append
  std::unique_ptr<util::FileLock> fileLock_;   ///< Atomic mode only
  std::unique_ptr<util::AtomicAppend> appender_;  ///< opened on first append
  std::uint64_t readOffset_ = 0;  ///< resume point for refresh()
  std::unordered_map<std::uint64_t, std::map<ShardRange, ShardAggregate>>
      shards_;
  /// Campaign meta per key, from the first shard record seen (first-wins,
  /// like the shard index) — serves snapshot() so analytics can match
  /// records by (workload, spec, seed, experiments) without recomputing
  /// campaign keys (which would need compiled workloads).
  std::unordered_map<std::uint64_t, CampaignMeta> metas_;
  std::map<std::string, WorkloadRecord, std::less<>> workloads_;
  std::unordered_map<std::uint64_t, std::map<OutcomeKey, OutcomeRecord>>
      outcomes_;
  std::vector<CellRecord> cellOrder_;  ///< first-submission order
  std::unordered_map<std::uint64_t, std::size_t> cellIndex_;  ///< key → idx
  std::unordered_map<std::uint64_t, std::map<ShardRange, LeaseRecord>>
      leases_;
  std::unordered_map<std::uint64_t, std::map<ShardRange, QuarantineRecord>>
      quarantines_;
  std::atomic<int> lastWriteErrno_{0};  ///< errno of the last failed append
};

/// How a campaign engine (or a driver built on one) should use a store:
/// record newly completed shards, resume from recorded ones, or both.
/// A default-constructed binding is inert.
struct StoreBinding {
  CampaignStore* store = nullptr;
  bool resume = false;    ///< skip shards already recorded under this key
  std::string workload;   ///< name stamped into new records
};

}  // namespace onebit::fi
