// Persistent campaign results store: checkpoint/resume for long campaigns.
//
// The store is an append-only JSONL file. Every record is one line, written
// and flushed atomically from the writer's point of view, so a campaign
// killed at any instant loses at most the shard it was computing — never a
// recorded one. Records are self-describing (versioned, carrying the fault
// spec label, seed, and campaign geometry) so a store file is meaningful on
// its own, greppable, and loadable by plotting scripts.
//
// Two record kinds share the file:
//
//   shard record (kind "shard") — one completed campaign shard:
//     {"v":1,"kind":"shard","key":"0x<16 hex>","workload":"qsort",
//      "spec":"read/single","seed":"0x<16 hex>","experiments":400,
//      "candidates":1234,"shard":3,"first":96,"count":32,
//      "outcomes":[b,d,h,n,s],"hist":[[o,k,c],...]}
//   `key` is the campaign key (below); `outcomes` is the shard's
//   OutcomeCounts in Outcome declaration order; `hist` is the sparse
//   activation histogram: [outcome index, activation bucket, count] triples
//   for the non-zero cells only. Full-range 64-bit fields (key, seed,
//   src_hash) are hex strings so double-based JSON consumers (jq, JS)
//   cannot silently round them.
//
//   workload record (kind "workload") — one profiled Table II program:
//     {"v":1,"kind":"workload","name":"qsort","suite":"MiBench",
//      "package":"automotive","src_hash":"0x<16 hex>","minic_loc":57,
//      "ir_instrs":210,"dyn_instrs":51234,"cand_read":30321,
//      "cand_write":20117,"cand_store":9876}
//
//   outcome record (kind "outcome") — one outcome-equivalence cache entry
//   (fi/outcome_cache.hpp), so resumed pruned campaigns keep their warm
//   cache and hit rates:
//     {"v":1,"kind":"outcome","key":"0x<16 hex>","boundary":4096,
//      "hash":"0x<16 hex>","outcome":0,"trap":0,"instructions":51234}
//   `key` is outcomeCacheKey(campaign key) — derived from, but never equal
//   to, a campaign key, so outcome records can never collide with shard
//   records and paper-cell results are untouched by pruning.
//
// Campaign key: a 64-bit hash of everything the determinism contract says a
// campaign result depends on — the full FaultModel (technique, max-MBF,
// win-size, flip width), experiment count, master seed — plus the
// workload's fingerprint (golden output, dynamic instruction count,
// candidate counts), which binds records to the observable behavior of the
// injected program. Shard records are matched by (key, first, count), so
// resuming reuses exactly the shards whose experiment ranges the current
// shard geometry reproduces; records written under a different shard size
// are ignored (and harmlessly re-run) rather than risk mis-merging.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "fi/campaign.hpp"
#include "util/jsonl.hpp"

namespace onebit::fi {

class CampaignStore {
 public:
  /// Current record schema version; bump when the format changes shape.
  static constexpr std::uint64_t kFormatVersion = 1;

  /// Version of the experiment semantics, folded into every campaign key.
  /// Bump on ANY result-affecting code change (fault-plan derivation, RNG,
  /// injection hooks, outcome classification, VM behavior): records written
  /// by the old semantics must not resume into the new ones, or a "resumed"
  /// campaign would mix results no uninterrupted run could produce.
  static constexpr std::uint64_t kResultSemanticsVersion = 1;

  /// Semantics version of the EXTENSION cells of the fault-model algebra —
  /// the MemoryData/RandomValue domains and the BurstAdjacent pattern
  /// (everything FaultModel::isPaperModel() excludes). Folded into those
  /// campaign keys on top of kResultSemanticsVersion, so extension
  /// semantics can evolve (bump this) without invalidating the paper
  /// cells' recorded results, and extension records can never collide with
  /// a paper-cell key.
  static constexpr std::uint64_t kExtendedSemanticsVersion = 1;

  /// Semantics version of the outcome-equivalence pruning layer (state-hash
  /// definition, boundary placement, cache soundness rules). Folded into
  /// every outcome-cache key: bump it whenever the hash function or pruning
  /// semantics change, so stale cache entries are orphaned instead of
  /// replayed into results they no longer describe.
  static constexpr std::uint64_t kPruneSemanticsVersion = 1;

  /// Aggregates of one recorded shard.
  struct ShardAggregate {
    stats::OutcomeCounts counts;
    ActivationHistogram hist{};
  };

  /// Campaign-level metadata carried by each shard record (for humans and
  /// plotting scripts; the key alone drives matching).
  struct CampaignMeta {
    std::uint64_t key = 0;
    std::string workload;   ///< caller-supplied name; may be empty
    std::string specLabel;  ///< FaultModel::label()
    std::uint64_t seed = 0;
    std::size_t experiments = 0;
    std::uint64_t candidates = 0;
  };

  /// One profiled Table II program (bench_table2_candidates).
  struct WorkloadRecord {
    std::string name;
    std::string suite;
    std::string package;
    /// util::hashBytes of the program's MiniC source. Consumers must treat
    /// a record whose hash differs from the current source as stale (the
    /// workload-record analog of the campaign key).
    std::uint64_t sourceHash = 0;
    std::uint64_t minicLoc = 0;
    std::uint64_t irInstrs = 0;
    std::uint64_t dynInstrs = 0;
    std::uint64_t candRead = 0;
    std::uint64_t candWrite = 0;
    std::uint64_t candStore = 0;

    bool operator==(const WorkloadRecord&) const = default;
  };

  /// One outcome-equivalence cache entry (see fi/outcome_cache.hpp).
  struct OutcomeRecord {
    std::uint64_t boundary = 0;  ///< hash-grid boundary (dynamic instructions)
    std::uint64_t hash = 0;      ///< vm::Machine::stateHash() at the boundary
    stats::Outcome outcome = stats::Outcome::Benign;
    vm::TrapKind trap = vm::TrapKind::None;
    std::uint64_t instructions = 0;  ///< final faulty instruction count
  };

  struct LoadStats {
    std::size_t shardRecords = 0;     ///< accepted shard records
    std::size_t workloadRecords = 0;  ///< accepted workload records
    std::size_t outcomeRecords = 0;   ///< accepted outcome-cache records
    std::size_t malformed = 0;  ///< unparseable or integrity-failing lines
                                ///< (incl. a torn final line)
    std::size_t duplicates = 0;  ///< re-recorded shards (first one wins)
  };

  struct CompactStats {
    std::size_t shardRecords = 0;     ///< surviving shard records
    std::size_t workloadRecords = 0;  ///< surviving workload records
    std::size_t outcomeRecords = 0;   ///< surviving outcome-cache records
    std::size_t droppedDuplicates = 0;  ///< superseded records dropped
    std::size_t droppedMalformed = 0;   ///< torn/invalid lines dropped
    bool rewritten = false;  ///< false = file was already canonical
  };

  /// Opens (lazily) the store at `path`. The file need not exist yet; the
  /// first append creates it.
  explicit CampaignStore(std::string path) : path_(std::move(path)) {}

  CampaignStore(const CampaignStore&) = delete;
  CampaignStore& operator=(const CampaignStore&) = delete;

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// The campaign key binding a record to (model, experiments, seed,
  /// workload identity). `workloadFingerprint` is
  /// Workload::fingerprintFor(model) — a hash of golden output, dynamic
  /// instruction count, candidate counts (including the store-event stream
  /// for extension cells), and the faulty-run instruction budget — so
  /// editing the injected program (or its hang budget) invalidates its
  /// records even when a single summary statistic happens to survive the
  /// edit. See the file header for the rationale.
  static std::uint64_t campaignKey(const FaultModel& model,
                                   std::size_t experiments,
                                   std::uint64_t seed,
                                   std::uint64_t workloadFingerprint) noexcept;

  /// The key outcome-cache records are stored under for a campaign cell:
  /// a salted rehash of the cell's campaign key chained with
  /// kPruneSemanticsVersion. Deriving (rather than reusing) the campaign key
  /// keeps the two record populations disjoint, and the version fold orphans
  /// cached outcomes whenever pruning semantics change.
  static std::uint64_t outcomeCacheKey(std::uint64_t campaignKey) noexcept;

  /// Read all records currently on disk into the in-memory index. Missing
  /// file loads as empty. Malformed lines are counted, never fatal: the
  /// torn last line of a killed writer must not poison the store.
  LoadStats load();

  /// Rewrite the JSONL store at `path` in place, keeping only the newest
  /// record per (campaign key, shard range) and per workload name, and
  /// dropping torn or integrity-failing lines — the maintenance pass for a
  /// store grown by interrupted runs or by several concurrent writer
  /// processes (whose appends bypass each other's in-memory dedup index).
  /// Resuming from a compacted store is identical to resuming from the
  /// original: the surviving records are exactly the ones load() would
  /// index. Crash-safe (temp file + rename); a file that is already
  /// canonical is left untouched byte for byte. Returns nullopt on I/O
  /// failure (the original file is preserved). Do not run it on a store an
  /// open CampaignStore instance is appending to.
  static std::optional<CompactStats> compact(const std::string& path);

  /// Append one completed shard (thread-safe; serialized internally). The
  /// line is flushed before the call returns. A shard already present in
  /// the in-memory index (loaded or appended earlier through this instance)
  /// is skipped, so record-only reruns do not balloon the file. Returns
  /// false on I/O error.
  bool appendShard(const CampaignMeta& meta, std::size_t shardIndex,
                   std::size_t firstExperiment, std::size_t experimentCount,
                   const ShardAggregate& aggregate);

  /// Append one workload profile (thread-safe). An identical record already
  /// in the index is skipped. Returns false on I/O error.
  bool appendWorkload(const WorkloadRecord& record);

  /// Append one outcome-cache entry under `cacheKey` (thread-safe). An entry
  /// already indexed for (cacheKey, boundary, hash) is skipped — entry
  /// values are pure functions of their key, so the first record is as good
  /// as any later one. Returns false on I/O error.
  bool appendOutcome(std::uint64_t cacheKey, const OutcomeRecord& record);

  /// Visit every outcome-cache entry recorded under `cacheKey` (the warm
  /// start of a resumed pruned campaign). Do not call appendOutcome from
  /// inside the callback (the store lock is held).
  void forEachOutcome(
      std::uint64_t cacheKey,
      const std::function<void(const OutcomeRecord&)>& fn) const;

  /// Look up a recorded shard by campaign key and exact experiment range.
  /// Returns nullptr when absent. Pointers stay valid until the store is
  /// destroyed (records are never evicted).
  [[nodiscard]] const ShardAggregate* findShard(
      std::uint64_t key, std::size_t firstExperiment,
      std::size_t experimentCount) const;

  /// Total experiments recorded for a campaign key (for progress reports).
  [[nodiscard]] std::size_t recordedExperiments(std::uint64_t key) const;

  /// Look up a profiled workload by name; nullptr when absent.
  [[nodiscard]] const WorkloadRecord* findWorkload(
      std::string_view name) const;

 private:
  using ShardRange = std::pair<std::size_t, std::size_t>;  ///< (first, count)
  using OutcomeKey = std::pair<std::uint64_t, std::uint64_t>;  ///< (bnd, hash)

  bool indexShard(std::uint64_t key, ShardRange range, ShardAggregate agg);

  std::string path_;
  mutable std::mutex mutex_;
  std::unique_ptr<util::JsonlWriter> writer_;  ///< opened on first append
  std::unordered_map<std::uint64_t, std::map<ShardRange, ShardAggregate>>
      shards_;
  std::map<std::string, WorkloadRecord, std::less<>> workloads_;
  std::unordered_map<std::uint64_t, std::map<OutcomeKey, OutcomeRecord>>
      outcomes_;
};

/// How a campaign engine (or a driver built on one) should use a store:
/// record newly completed shards, resume from recorded ones, or both.
/// A default-constructed binding is inert.
struct StoreBinding {
  CampaignStore* store = nullptr;
  bool resume = false;    ///< skip shards already recorded under this key
  std::string workload;   ///< name stamped into new records
};

}  // namespace onebit::fi
