#include "fi/fault_model.hpp"

namespace onebit::fi {

namespace {

std::string_view domainPrefix(FaultDomain d) noexcept {
  switch (d) {
    case FaultDomain::RegisterRead: return "read";
    case FaultDomain::RegisterWrite: return "write";
    case FaultDomain::MemoryData: return "mem";
    case FaultDomain::RandomValue: return "rand";
  }
  return "read";
}

std::optional<FaultDomain> domainFromPrefix(std::string_view s) noexcept {
  if (s == "read") return FaultDomain::RegisterRead;
  if (s == "write") return FaultDomain::RegisterWrite;
  if (s == "mem") return FaultDomain::MemoryData;
  if (s == "rand") return FaultDomain::RandomValue;
  return std::nullopt;
}

/// Parse a nonempty all-digit prefix of `s`, consuming it. Rejects values
/// that overflow 64 bits.
std::optional<std::uint64_t> eatUint(std::string_view& s) noexcept {
  if (s.empty() || s.front() < '0' || s.front() > '9') return std::nullopt;
  std::uint64_t v = 0;
  std::size_t i = 0;
  for (; i < s.size() && s[i] >= '0' && s[i] <= '9'; ++i) {
    const std::uint64_t digit = static_cast<std::uint64_t>(s[i] - '0');
    if (v > (~0ULL - digit) / 10) return std::nullopt;
    v = v * 10 + digit;
  }
  s.remove_prefix(i);
  return v;
}

bool eat(std::string_view& s, std::string_view prefix) noexcept {
  if (s.substr(0, prefix.size()) != prefix) return false;
  s.remove_prefix(prefix.size());
  return true;
}

/// Parse a full win-size spelling: "<uint>" or "RND(<lo>-<hi>)".
std::optional<TemporalSpread> parseSpread(std::string_view& s) noexcept {
  if (eat(s, "RND(")) {
    const auto lo = eatUint(s);
    if (!lo || !eat(s, "-")) return std::nullopt;
    const auto hi = eatUint(s);
    if (!hi || !eat(s, ")") || *lo > *hi) return std::nullopt;
    return TemporalSpread::random(*lo, *hi);
  }
  const auto v = eatUint(s);
  if (!v) return std::nullopt;
  return TemporalSpread::fixed(*v);
}

/// Canonical form for matches(): a temporal pattern whose flip budget never
/// spreads (count <= 1) is the single-bit model, and its spread is inert.
FaultModel canonical(FaultModel m) noexcept {
  if (m.isSingleBit()) {
    m.pattern = BitPattern::singleBit();
    m.spread = {};
  }
  return m;
}

}  // namespace

std::string_view domainName(FaultDomain d) noexcept {
  switch (d) {
    case FaultDomain::RegisterRead: return "inject-on-read";
    case FaultDomain::RegisterWrite: return "inject-on-write";
    case FaultDomain::MemoryData: return "memory-data";
    case FaultDomain::RandomValue: return "random-value";
  }
  return "inject-on-read";
}

std::uint64_t TemporalSpread::sample(util::Rng& rng) const {
  if (kind == Kind::Fixed) return value;
  return lo + rng.below(hi - lo + 1);
}

std::string TemporalSpread::label() const {
  if (kind == Kind::Fixed) return std::to_string(value);
  return "RND(" + std::to_string(lo) + "-" + std::to_string(hi) + ")";
}

std::string FaultModel::label() const {
  const std::string dom{domainPrefix(domain)};
  if (pattern.kind == BitPattern::Kind::BurstAdjacent) {
    return dom + "/burst=" + std::to_string(pattern.count);
  }
  if (isSingleBit()) return dom + "/single";
  return dom + "/m=" + std::to_string(pattern.count) + ",w=" + spread.label();
}

std::optional<FaultModel> FaultModel::parse(std::string_view label) {
  const std::size_t slash = label.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto domain = domainFromPrefix(label.substr(0, slash));
  if (!domain) return std::nullopt;
  std::string_view rest = label.substr(slash + 1);
  if (rest == "single") return singleBit(*domain);
  if (eat(rest, "burst=")) {
    const auto k = eatUint(rest);
    if (!k || *k == 0 || *k > 64 || !rest.empty()) return std::nullopt;
    return burstAdjacent(*domain, static_cast<unsigned>(*k));
  }
  if (eat(rest, "m=")) {
    const auto m = eatUint(rest);
    if (!m || *m < 2 || *m > ~0U || !eat(rest, ",w=")) return std::nullopt;
    const auto w = parseSpread(rest);
    if (!w || !rest.empty()) return std::nullopt;
    return multiBitTemporal(*domain, static_cast<unsigned>(*m), *w);
  }
  return std::nullopt;
}

bool FaultModel::matches(const FaultModel& other) const noexcept {
  const FaultModel a = canonical(*this);
  const FaultModel b = canonical(other);
  return a.domain == b.domain && a.pattern == b.pattern && a.spread == b.spread;
}

const std::vector<unsigned>& FaultModel::paperMaxMbf() {
  static const std::vector<unsigned> values = {2, 3, 4, 5, 6, 7, 8, 9, 10, 30};
  return values;
}

const std::vector<TemporalSpread>& FaultModel::paperWinSizes() {
  static const std::vector<TemporalSpread> values = {
      TemporalSpread::fixed(0),          TemporalSpread::fixed(1),
      TemporalSpread::fixed(4),          TemporalSpread::random(2, 10),
      TemporalSpread::fixed(10),         TemporalSpread::random(11, 100),
      TemporalSpread::fixed(100),        TemporalSpread::random(101, 1000),
      TemporalSpread::fixed(1000),
  };
  return values;
}

}  // namespace onebit::fi
