// Proportion estimates with 95% confidence intervals (§III-E: "we also
// compute error bars at the 95% confidence intervals").
#pragma once

#include <cstddef>

namespace onebit::stats {

struct Proportion {
  double fraction = 0.0;     ///< point estimate successes/n
  double ciHalfWidth = 0.0;  ///< half width of the confidence interval
  std::size_t successes = 0;
  std::size_t n = 0;

  [[nodiscard]] double lower() const noexcept;
  [[nodiscard]] double upper() const noexcept;
};

/// Normal-approximation (Wald) interval, the standard choice in the fault
/// injection literature. z defaults to the 95% quantile.
Proportion proportionCI(std::size_t successes, std::size_t n,
                        double z = 1.959963984540054);

/// Wilson score interval — better behaved for small n / extreme p; used by
/// the property tests to sanity-check the Wald numbers.
Proportion wilsonCI(std::size_t successes, std::size_t n,
                    double z = 1.959963984540054);

}  // namespace onebit::stats
