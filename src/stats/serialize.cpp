#include "stats/serialize.hpp"

namespace onebit::stats {

util::Json toJson(const OutcomeCounts& counts) {
  util::Json arr = util::Json::array();
  for (const std::size_t c : counts.raw()) {
    arr.push(util::Json::number(static_cast<std::uint64_t>(c)));
  }
  return arr;
}

bool fromJson(const util::Json& value, OutcomeCounts& out) {
  if (!value.isArray()) return false;
  const util::Json::Array& items = value.items();
  if (items.size() != kOutcomeCount) return false;
  std::array<std::size_t, kOutcomeCount> raw{};
  for (std::size_t i = 0; i < kOutcomeCount; ++i) {
    if (!items[i].isNumber()) return false;
    const std::uint64_t sentinel = ~0ULL;
    const std::uint64_t v = items[i].asUint(sentinel);
    if (v == sentinel) return false;  // negative or non-integral
    raw[i] = static_cast<std::size_t>(v);
  }
  out = OutcomeCounts::fromRaw(raw);
  return true;
}

util::Json toJson(const Proportion& p) {
  util::Json obj = util::Json::object();
  obj.set("fraction", util::Json::number(p.fraction));
  obj.set("ci", util::Json::number(p.ciHalfWidth));
  obj.set("successes",
          util::Json::number(static_cast<std::uint64_t>(p.successes)));
  obj.set("n", util::Json::number(static_cast<std::uint64_t>(p.n)));
  return obj;
}

}  // namespace onebit::stats
