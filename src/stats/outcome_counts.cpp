#include "stats/outcome_counts.hpp"

namespace onebit::stats {

std::string_view outcomeName(Outcome o) noexcept {
  switch (o) {
    case Outcome::Benign: return "Benign";
    case Outcome::Detected: return "Detected";
    case Outcome::Hang: return "Hang";
    case Outcome::NoOutput: return "NoOutput";
    case Outcome::SDC: return "SDC";
  }
  return "?";
}

OutcomeCounts OutcomeCounts::fromRaw(
    const std::array<std::size_t, kOutcomeCount>& counts) noexcept {
  OutcomeCounts out;
  out.counts_ = counts;
  return out;
}

void OutcomeCounts::merge(const OutcomeCounts& other) noexcept {
  for (std::size_t i = 0; i < kOutcomeCount; ++i) {
    counts_[i] += other.counts_[i];
  }
}

std::size_t OutcomeCounts::total() const noexcept {
  std::size_t t = 0;
  for (const std::size_t c : counts_) t += c;
  return t;
}

Proportion OutcomeCounts::proportion(Outcome o) const {
  return proportionCI(count(o), total());
}

Proportion OutcomeCounts::resilience() const {
  const std::size_t t = total();
  return proportionCI(t - count(Outcome::SDC), t);
}

}  // namespace onebit::stats
