#include "stats/confidence.hpp"

#include <algorithm>
#include <cmath>

namespace onebit::stats {

double Proportion::lower() const noexcept {
  return std::max(0.0, fraction - ciHalfWidth);
}

double Proportion::upper() const noexcept {
  return std::min(1.0, fraction + ciHalfWidth);
}

Proportion proportionCI(std::size_t successes, std::size_t n, double z) {
  Proportion p;
  p.successes = successes;
  p.n = n;
  if (n == 0) return p;
  p.fraction = static_cast<double>(successes) / static_cast<double>(n);
  p.ciHalfWidth =
      z * std::sqrt(p.fraction * (1.0 - p.fraction) / static_cast<double>(n));
  return p;
}

Proportion wilsonCI(std::size_t successes, std::size_t n, double z) {
  Proportion p;
  p.successes = successes;
  p.n = n;
  if (n == 0) return p;
  const double nn = static_cast<double>(n);
  const double phat = static_cast<double>(successes) / nn;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / nn;
  const double center = (phat + z2 / (2.0 * nn)) / denom;
  const double half =
      (z * std::sqrt(phat * (1.0 - phat) / nn + z2 / (4.0 * nn * nn))) / denom;
  p.fraction = center;
  p.ciHalfWidth = half;
  return p;
}

}  // namespace onebit::stats
