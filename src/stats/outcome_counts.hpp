// Outcome taxonomy of §III-E and aggregate counters.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "stats/confidence.hpp"

namespace onebit::stats {

/// Experiment outcome classification (§III-E). The first four categories
/// contribute to error resilience; SDC is the failure class the paper (and
/// this library) focuses on.
enum class Outcome : unsigned char {
  Benign,    ///< normal termination, output matches the golden run
  Detected,  ///< hardware exception raised (segfault/misaligned/div0/abort)
  Hang,      ///< did not terminate within the instruction budget
  NoOutput,  ///< normal termination but no output produced
  SDC,       ///< normal termination with wrong output, no failure indication
};

inline constexpr std::size_t kOutcomeCount = 5;

std::string_view outcomeName(Outcome o) noexcept;

/// Counts per outcome for one campaign.
class OutcomeCounts {
 public:
  void add(Outcome o) noexcept { ++counts_[index(o)]; }
  void merge(const OutcomeCounts& other) noexcept;

  bool operator==(const OutcomeCounts&) const = default;

  /// Raw per-outcome counters in Outcome declaration order (the store's
  /// serialization order; see stats/serialize.hpp).
  [[nodiscard]] const std::array<std::size_t, kOutcomeCount>& raw()
      const noexcept {
    return counts_;
  }
  /// Rebuild from raw counters (deserialization).
  static OutcomeCounts fromRaw(
      const std::array<std::size_t, kOutcomeCount>& counts) noexcept;

  [[nodiscard]] std::size_t count(Outcome o) const noexcept {
    return counts_[index(o)];
  }
  [[nodiscard]] std::size_t total() const noexcept;

  /// Fraction of experiments with this outcome, with 95% CI.
  [[nodiscard]] Proportion proportion(Outcome o) const;

  /// P(no SDC) — the paper's error resilience metric (§II-B).
  [[nodiscard]] Proportion resilience() const;

 private:
  static constexpr std::size_t index(Outcome o) noexcept {
    return static_cast<std::size_t>(o);
  }
  std::array<std::size_t, kOutcomeCount> counts_{};
};

}  // namespace onebit::stats
