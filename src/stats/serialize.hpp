// JSON (de)serialization of the stats aggregates stored in checkpoint
// records. Kept in src/stats so the wire order of the outcome counters is
// defined next to the Outcome enum it depends on.
#pragma once

#include "stats/outcome_counts.hpp"
#include "util/jsonl.hpp"

namespace onebit::stats {

/// Encode as a 5-element array in Outcome declaration order:
/// [Benign, Detected, Hang, NoOutput, SDC].
util::Json toJson(const OutcomeCounts& counts);

/// Decode the toJson() form. Returns false (leaving `out` untouched) when
/// the value is not a kOutcomeCount-element array of non-negative integers.
bool fromJson(const util::Json& value, OutcomeCounts& out);

/// Encode a proportion with its confidence interval, e.g. for exported
/// summary records: {"fraction":..,"ci":..,"successes":..,"n":..}.
util::Json toJson(const Proportion& p);

}  // namespace onebit::stats
