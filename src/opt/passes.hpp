// Optimization passes over onebit IR.
//
// The paper injects faults into LLVM IR *after* normal compilation, so the
// instruction mix it samples is an optimized one. Our MiniC code generator
// emits naive (-O0-style) IR; these passes provide the -O1-style variant so
// the effect of compiler optimization on fault-injection results can be
// studied (bench/ablation_optimization). All passes preserve observable
// behaviour: traps, output and return values.
#pragma once

#include <string>

#include "ir/module.hpp"

namespace onebit::opt {

struct PassStats {
  std::size_t foldedConsts = 0;       ///< binops/unops folded to Const
  std::size_t peepholes = 0;          ///< algebraic identities simplified
  std::size_t copiesPropagated = 0;   ///< Move chains short-circuited
  std::size_t deadRemoved = 0;        ///< side-effect-free dead instrs removed
  std::size_t blocksMerged = 0;       ///< straight-line block splices
  std::size_t iterations = 0;         ///< fixpoint rounds

  [[nodiscard]] std::size_t total() const noexcept {
    return foldedConsts + peepholes + copiesPropagated + deadRemoved +
           blocksMerged;
  }
};

/// Fold binary/unary operations whose operands are all immediates.
/// Division/remainder by a zero immediate is left alone (must still trap).
std::size_t constantFold(ir::Function& fn);

/// Algebraic identities: x+0, x-0, x*1, x*0, x&0, x|0, x^0, shifts by 0,
/// x/1, comparisons of a register against itself, double-move.
std::size_t peephole(ir::Function& fn);

/// Forward `Move dst, src` within a block: later reads of dst become reads
/// of src until either register is rewritten.
std::size_t propagateCopies(ir::Function& fn);

/// Remove side-effect-free instructions whose destination register is never
/// read anywhere in the function.
std::size_t removeDeadCode(ir::Function& fn);

/// Splice single-predecessor blocks into their unique predecessor and drop
/// unreachable blocks.
std::size_t simplifyCfg(ir::Function& fn);

/// Run all passes to a fixpoint over every function. The module still
/// verifies afterwards.
PassStats optimize(ir::Module& mod);

}  // namespace onebit::opt
