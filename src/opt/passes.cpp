#include "opt/passes.hpp"

#include <limits>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ir/verifier.hpp"

namespace onebit::opt {

namespace {

using ir::Instr;
using ir::Opcode;
using ir::Operand;
using ir::Reg;

/// Evaluate a pure instruction over immediate operands. Returns false when
/// the operation cannot (or must not) be folded — e.g. division by zero,
/// which has to trap at run time.
bool evalPure(const Instr& in, std::uint64_t a, std::uint64_t b,
              std::uint64_t& out) {
  const auto ia = ir::asI64(a);
  const auto ib = ir::asI64(b);
  const double fa = ir::asF64(a);
  const double fb = ir::asF64(b);
  switch (in.op) {
    case Opcode::Add: out = a + b; return true;
    case Opcode::Sub: out = a - b; return true;
    case Opcode::Mul: out = a * b; return true;
    case Opcode::SDiv:
      if (ib == 0) return false;
      if (ib == -1 && ia == std::numeric_limits<std::int64_t>::min()) {
        out = a;
        return true;
      }
      out = ir::fromI64(ia / ib);
      return true;
    case Opcode::SRem:
      if (ib == 0) return false;
      out = ib == -1 ? 0 : ir::fromI64(ia % ib);
      return true;
    case Opcode::And: out = a & b; return true;
    case Opcode::Or: out = a | b; return true;
    case Opcode::Xor: out = a ^ b; return true;
    case Opcode::Shl: out = a << (b & 63U); return true;
    case Opcode::LShr: out = a >> (b & 63U); return true;
    case Opcode::AShr: out = ir::fromI64(ia >> (b & 63U)); return true;
    case Opcode::FAdd: out = ir::fromF64(fa + fb); return true;
    case Opcode::FSub: out = ir::fromF64(fa - fb); return true;
    case Opcode::FMul: out = ir::fromF64(fa * fb); return true;
    case Opcode::FDiv: out = ir::fromF64(fa / fb); return true;
    case Opcode::ICmpEq: out = a == b ? 1 : 0; return true;
    case Opcode::ICmpNe: out = a != b ? 1 : 0; return true;
    case Opcode::ICmpLt: out = ia < ib ? 1 : 0; return true;
    case Opcode::ICmpLe: out = ia <= ib ? 1 : 0; return true;
    case Opcode::ICmpGt: out = ia > ib ? 1 : 0; return true;
    case Opcode::ICmpGe: out = ia >= ib ? 1 : 0; return true;
    case Opcode::FCmpEq: out = fa == fb ? 1 : 0; return true;
    case Opcode::FCmpNe: out = fa != fb ? 1 : 0; return true;
    case Opcode::FCmpLt: out = fa < fb ? 1 : 0; return true;
    case Opcode::FCmpLe: out = fa <= fb ? 1 : 0; return true;
    case Opcode::FCmpGt: out = fa > fb ? 1 : 0; return true;
    case Opcode::FCmpGe: out = fa >= fb ? 1 : 0; return true;
    case Opcode::SIToFP: out = ir::fromF64(static_cast<double>(ia)); return true;
    case Opcode::Move: out = a; return true;
    default:
      return false;
  }
}

void toConst(Instr& in, std::uint64_t value) {
  in.op = Opcode::Const;
  in.imm = value;
  in.operands.clear();
}

void toMove(Instr& in, const Operand& src) {
  in.op = Opcode::Move;
  in.operands = {src};
}

}  // namespace

std::size_t constantFold(ir::Function& fn) {
  std::size_t changed = 0;
  for (auto& bb : fn.blocks) {
    for (Instr& in : bb.instrs) {
      if (!in.hasDest() || in.operands.empty()) continue;
      bool allImm = true;
      for (const auto& op : in.operands) allImm = allImm && !op.isReg();
      if (!allImm) continue;
      const std::uint64_t a = in.operands[0].imm;
      const std::uint64_t b = in.operands.size() > 1 ? in.operands[1].imm : 0;
      std::uint64_t out = 0;
      // FPToSI / Intrinsic are foldable in principle; we leave them to the
      // VM so folded modules and libm agree bit-for-bit.
      if (in.op == Opcode::FPToSI || in.op == Opcode::Intrinsic) continue;
      if (!evalPure(in, a, b, out)) continue;
      toConst(in, out);
      ++changed;
    }
  }
  return changed;
}

std::size_t peephole(ir::Function& fn) {
  std::size_t changed = 0;
  for (auto& bb : fn.blocks) {
    for (Instr& in : bb.instrs) {
      if (!in.hasDest() || in.operands.size() != 2) continue;
      const Operand& x = in.operands[0];
      const Operand& y = in.operands[1];
      const bool yImm = !y.isReg();
      const bool xImm = !x.isReg();
      const std::uint64_t yv = y.imm;
      const std::uint64_t xv = x.imm;

      switch (in.op) {
        case Opcode::Add:
          if (yImm && yv == 0) { toMove(in, x); ++changed; }
          else if (xImm && xv == 0) { toMove(in, y); ++changed; }
          break;
        case Opcode::Sub:
          if (yImm && yv == 0) { toMove(in, x); ++changed; }
          break;
        case Opcode::Mul:
          if (yImm && yv == 1) { toMove(in, x); ++changed; }
          else if (xImm && xv == 1) { toMove(in, y); ++changed; }
          else if ((yImm && yv == 0) || (xImm && xv == 0)) {
            toConst(in, 0);
            ++changed;
          }
          break;
        case Opcode::SDiv:
          if (yImm && ir::asI64(yv) == 1) { toMove(in, x); ++changed; }
          break;
        case Opcode::And:
          if (yImm && yv == ~0ULL) { toMove(in, x); ++changed; }
          else if ((yImm && yv == 0) || (xImm && xv == 0)) {
            toConst(in, 0);
            ++changed;
          }
          break;
        case Opcode::Or:
        case Opcode::Xor:
          if (yImm && yv == 0) { toMove(in, x); ++changed; }
          else if (xImm && xv == 0) { toMove(in, y); ++changed; }
          break;
        case Opcode::Shl:
        case Opcode::LShr:
        case Opcode::AShr:
          if (yImm && (yv & 63U) == 0) { toMove(in, x); ++changed; }
          break;
        case Opcode::FMul:
        case Opcode::FDiv:
          if (yImm && ir::asF64(yv) == 1.0) { toMove(in, x); ++changed; }
          break;
        case Opcode::ICmpEq:
        case Opcode::ICmpLe:
        case Opcode::ICmpGe:
          if (x.isReg() && y.isReg() && x.reg == y.reg) {
            toConst(in, 1);
            ++changed;
          }
          break;
        case Opcode::ICmpNe:
        case Opcode::ICmpLt:
        case Opcode::ICmpGt:
          if (x.isReg() && y.isReg() && x.reg == y.reg) {
            toConst(in, 0);
            ++changed;
          }
          break;
        default:
          break;
      }
    }
  }
  return changed;
}

std::size_t propagateCopies(ir::Function& fn) {
  std::size_t changed = 0;
  for (auto& bb : fn.blocks) {
    // reg -> operand it currently equals (imm, or another live reg)
    std::unordered_map<Reg, Operand> equals;
    auto invalidate = [&equals](Reg r) {
      equals.erase(r);
      for (auto it = equals.begin(); it != equals.end();) {
        if (it->second.isReg() && it->second.reg == r) it = equals.erase(it);
        else ++it;
      }
    };
    for (Instr& in : bb.instrs) {
      for (Operand& op : in.operands) {
        if (!op.isReg()) continue;
        const auto it = equals.find(op.reg);
        if (it != equals.end()) {
          op = it->second;
          ++changed;
        }
      }
      if (in.hasDest()) {
        invalidate(in.dest);
        if (in.op == Opcode::Move) {
          const Operand& src = in.operands[0];
          // Never record a self-copy; a register cannot equal itself through
          // a rewrite.
          if (!src.isReg() || src.reg != in.dest) equals[in.dest] = src;
        } else if (in.op == Opcode::Const) {
          equals[in.dest] = Operand::makeImm(in.imm);
        }
      }
    }
  }
  return changed;
}

std::size_t removeDeadCode(ir::Function& fn) {
  std::unordered_set<Reg> readAnywhere;
  for (const auto& bb : fn.blocks) {
    for (const Instr& in : bb.instrs) {
      for (const Operand& op : in.operands) {
        if (op.isReg()) readAnywhere.insert(op.reg);
      }
    }
  }
  auto isRemovable = [&](const Instr& in) {
    if (!in.hasDest() || readAnywhere.count(in.dest) != 0) return false;
    switch (in.op) {
      case Opcode::Const: case Opcode::Move: case Opcode::FrameAddr:
      case Opcode::Add: case Opcode::Sub: case Opcode::Mul: case Opcode::And:
      case Opcode::Or: case Opcode::Xor: case Opcode::Shl: case Opcode::LShr:
      case Opcode::AShr: case Opcode::FAdd: case Opcode::FSub:
      case Opcode::FMul: case Opcode::FDiv: case Opcode::SIToFP:
      case Opcode::FPToSI: case Opcode::Intrinsic:
        return true;
      case Opcode::ICmpEq: case Opcode::ICmpNe: case Opcode::ICmpLt:
      case Opcode::ICmpLe: case Opcode::ICmpGt: case Opcode::ICmpGe:
      case Opcode::FCmpEq: case Opcode::FCmpNe: case Opcode::FCmpLt:
      case Opcode::FCmpLe: case Opcode::FCmpGt: case Opcode::FCmpGe:
        return true;
      case Opcode::SDiv:
      case Opcode::SRem:
        // May trap: only removable when the divisor is a nonzero immediate.
        return !in.operands[1].isReg() && in.operands[1].imm != 0;
      default:
        return false;  // loads/stores/calls/allocs/IO have side effects
    }
  };
  std::size_t removed = 0;
  for (auto& bb : fn.blocks) {
    std::vector<Instr> kept;
    kept.reserve(bb.instrs.size());
    for (Instr& in : bb.instrs) {
      if (isRemovable(in)) {
        ++removed;
      } else {
        kept.push_back(std::move(in));
      }
    }
    bb.instrs = std::move(kept);
  }
  return removed;
}

std::size_t simplifyCfg(ir::Function& fn) {
  std::size_t changed = 0;

  // 1. Merge single-predecessor straight lines.
  bool merged = true;
  while (merged) {
    merged = false;
    // Count predecessors.
    std::vector<int> preds(fn.blocks.size(), 0);
    for (const auto& bb : fn.blocks) {
      if (bb.instrs.empty()) continue;
      const Instr& t = bb.instrs.back();
      if (t.op == Opcode::Br) {
        ++preds[t.target0];
      } else if (t.op == Opcode::CondBr) {
        ++preds[t.target0];
        ++preds[t.target1];
      }
    }
    for (std::uint32_t a = 0; a < fn.blocks.size(); ++a) {
      auto& blockA = fn.blocks[a];
      if (blockA.instrs.empty()) continue;
      Instr& t = blockA.instrs.back();
      if (t.op != Opcode::Br) continue;
      const std::uint32_t b = t.target0;
      if (b == a || b == 0 || preds[b] != 1) continue;
      auto& blockB = fn.blocks[b];
      if (blockB.instrs.empty()) continue;  // already spliced this round
      blockA.instrs.pop_back();  // drop the Br
      for (auto& in : blockB.instrs) blockA.instrs.push_back(std::move(in));
      blockB.instrs.clear();
      ++changed;
      merged = true;
      break;  // predecessor counts are stale; recompute
    }
  }

  // 2. Drop unreachable / emptied blocks and remap branch targets.
  std::vector<bool> reachable(fn.blocks.size(), false);
  std::vector<std::uint32_t> stack = {0};
  while (!stack.empty()) {
    const std::uint32_t b = stack.back();
    stack.pop_back();
    if (b >= fn.blocks.size() || reachable[b]) continue;
    reachable[b] = true;
    if (fn.blocks[b].instrs.empty()) continue;
    const Instr& t = fn.blocks[b].instrs.back();
    if (t.op == Opcode::Br) stack.push_back(t.target0);
    if (t.op == Opcode::CondBr) {
      stack.push_back(t.target0);
      stack.push_back(t.target1);
    }
  }
  std::vector<std::uint32_t> remap(fn.blocks.size(), 0);
  std::vector<ir::BasicBlock> kept;
  for (std::uint32_t b = 0; b < fn.blocks.size(); ++b) {
    if (reachable[b] && !fn.blocks[b].instrs.empty()) {
      remap[b] = static_cast<std::uint32_t>(kept.size());
      kept.push_back(std::move(fn.blocks[b]));
    } else if (b != 0) {
      ++changed;
    }
  }
  for (auto& bb : kept) {
    Instr& t = bb.instrs.back();
    if (t.op == Opcode::Br) t.target0 = remap[t.target0];
    if (t.op == Opcode::CondBr) {
      t.target0 = remap[t.target0];
      t.target1 = remap[t.target1];
    }
  }
  fn.blocks = std::move(kept);
  return changed;
}

PassStats optimize(ir::Module& mod) {
  PassStats stats;
  for (auto& fn : mod.functions) {
    for (int round = 0; round < 10; ++round) {
      std::size_t changed = 0;
      const std::size_t folded = constantFold(fn);
      const std::size_t peeps = peephole(fn);
      const std::size_t copies = propagateCopies(fn);
      const std::size_t dead = removeDeadCode(fn);
      const std::size_t cfg = simplifyCfg(fn);
      stats.foldedConsts += folded;
      stats.peepholes += peeps;
      stats.copiesPropagated += copies;
      stats.deadRemoved += dead;
      stats.blocksMerged += cfg;
      changed = folded + peeps + copies + dead + cfg;
      ++stats.iterations;
      if (changed == 0) break;
    }
  }
  ir::verifyOrThrow(mod);
  return stats;
}

}  // namespace onebit::opt
