#include "vm/snapshot.hpp"

#include <utility>

#include "vm/machine.hpp"

namespace onebit::vm {

std::size_t Snapshot::byteSize() const noexcept {
  return sizeof(Snapshot) + frames.size() * sizeof(Frame) +
         regs.size() * sizeof(std::uint64_t) + globals.size() + stack.size() +
         heap.size() + output.size();
}

std::function<std::uint64_t(Snapshot&&)> makeRetentionSink(
    const SnapshotCapturePolicy& policy, std::vector<Snapshot>& out) {
  out.clear();
  return [&out, policy, interval = policy.interval == 0 ? 1 : policy.interval,
          bytes = std::size_t{0}](Snapshot&& snap) mutable -> std::uint64_t {
    bytes += snap.byteSize();
    out.push_back(std::move(snap));
    // Retention: when a bound is exceeded, drop every other kept snapshot
    // (the even positions, so the survivors line up with multiples of the
    // doubled interval) and coarsen the cadence to match. Coverage stays
    // uniform over the run at whatever density the budget affords.
    while ((policy.maxSnapshots != 0 && out.size() > policy.maxSnapshots) ||
           (policy.budgetBytes != 0 && bytes > policy.budgetBytes)) {
      if (out.empty()) break;
      std::vector<Snapshot> kept;
      kept.reserve(out.size() / 2);
      bytes = 0;
      for (std::size_t i = 1; i < out.size(); i += 2) {
        bytes += out[i].byteSize();
        kept.push_back(std::move(out[i]));
      }
      out = std::move(kept);
      interval *= 2;
    }
    return interval;
  };
}

ExecResult executeWithSnapshots(const ir::Module& mod, const ExecLimits& limits,
                                const SnapshotCapturePolicy& policy,
                                std::vector<Snapshot>& out) {
  Machine m(mod, limits, nullptr);
  m.captureEvery(policy.interval == 0 ? 1 : policy.interval,
                 makeRetentionSink(policy, out));
  return m.run();
}

ExecResult resume(const ir::Module& mod, const Snapshot& snap,
                  const ExecLimits& limits, ExecHook* hook) {
  Machine m(mod, snap, limits, hook);
  return m.run();
}

}  // namespace onebit::vm
