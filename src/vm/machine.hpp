// The resumable interpreter core behind vm::execute / vm::resume.
//
// A Machine owns the full mid-execution state of one run (frames, register
// stack, memory segments, counters, partial output) and can
//   * start fresh from a module's entry function,
//   * be reconstructed from a vm::Snapshot and continue bit-identically, and
//   * capture snapshots of itself at candidate-count boundaries while running
//     (the instrumented golden run of a fi::Workload).
//
// The execution loop is templated on whether a hook is attached: once an
// attached hook reports exhausted() — it can no longer mutate any future
// candidate — run() switches to the hook-free instantiation, so the tail of
// a faulty run pays no virtual hook dispatch at all (the same fast path
// golden runs use).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "ir/module.hpp"
#include "vm/interpreter.hpp"
#include "vm/memory.hpp"
#include "vm/snapshot.hpp"
#include "vm/state_hash.hpp"
#include "vm/threaded.hpp"

namespace onebit::vm {

namespace detail {

/// FPToSI semantics shared by both dispatch backends: NaN converts to 0,
/// out-of-range values saturate to the int64 extremes.
std::int64_t saturatingFpToSi(double d) noexcept;

}  // namespace detail

class Machine {
 public:
  /// Fresh run: pushes the entry frame (a frame too large for the stack
  /// traps immediately; run() then returns that trap).
  Machine(const ir::Module& mod, const ExecLimits& limits, ExecHook* hook);

  /// Resumed run: reconstructs the snapshot's state. Throws
  /// std::invalid_argument when the snapshot does not fit `mod`/`limits`.
  Machine(const ir::Module& mod, const Snapshot& snap, const ExecLimits& limits,
          ExecHook* hook);

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  /// Snapshot sink: receives each captured snapshot and returns the capture
  /// interval to use from here on (in combined candidate indices, >= 1) —
  /// collectors coarsen the cadence on the fly to honor retention budgets.
  using SnapshotSink = std::function<std::uint64_t(Snapshot&&)>;

  /// Capture a snapshot each time the combined candidate count
  /// (readCandidates + writeCandidates) crosses a multiple of `interval`
  /// (>= 1). Call before run().
  void captureEvery(std::uint64_t interval, SnapshotSink sink);

  /// Run to completion (or trap / fuel exhaustion). Call once, after any
  /// runToBoundary() pauses.
  ExecResult run();

  /// Run until the dynamic instruction counter reaches the next multiple of
  /// `grid` (> the current count), then pause between instructions and
  /// return true. Returns false when the run ends (halt / trap / fuel)
  /// before that boundary — the caller then calls run() to collect the
  /// result — or when state hashing is off / `grid` is 0.
  ///
  /// While an attached hook is not yet exhausted the run does NOT pause:
  /// pending injections are part of the dynamic state but not of the hash,
  /// so hash comparisons are only sound once the hook is exhausted. A hook
  /// that never exhausts simply runs to completion (returns false).
  bool runToBoundary(std::uint64_t grid);

  /// Snapshot the current between-instructions state (stateHash stamped
  /// when hashing is on).
  [[nodiscard]] Snapshot capture() const;

  /// The incrementally maintained 64-bit state hash (requires
  /// ExecLimits::trackStateHash). Two runs of the same module with equal
  /// stateHash() at the same point have bit-identical machine state, so
  /// their hook-free continuations are bit-identical too: the hash covers
  /// frames, registers, memory, sp, output (and its truncation flag), and
  /// the instruction/candidate counters.
  [[nodiscard]] std::uint64_t stateHash() const;

  /// From-scratch recomputation of stateHash() — the differential
  /// cross-check for the incremental maintenance (tests/state_hash_test).
  [[nodiscard]] std::uint64_t computeStateHash() const;

  /// Stop maintaining the state hash for the rest of the run. Execution is
  /// unchanged (the hash is passive), but stateHash() is stale afterwards
  /// and snapshots are no longer stamped. Callers that made their pruning
  /// decision at a boundary use this so the remainder runs at full speed.
  void stopStateHashTracking() noexcept;

  /// Dynamic instructions executed so far.
  [[nodiscard]] std::uint64_t instructions() const noexcept {
    return instructions_;
  }

 private:
  struct CallFrame {
    const ir::Function* fn = nullptr;
    std::uint32_t block = 0;
    std::uint32_t ip = 0;         ///< next instruction index within block
    std::size_t regBase = 0;      ///< base into the shared register stack
    std::uint64_t frameBase = 0;  ///< base address of this frame's stack slot
    const ir::Instr* pendingCall = nullptr;  ///< call awaiting a return value
  };

  ExecResult finish();
  void trap(TrapKind k);
  void pushFrame(std::uint32_t fnId, std::span<const std::uint64_t> args,
                 const ir::Instr* pendingCall);
  void popFrame();
  void appendOutput(const char* data, std::size_t n);
  void printValue(ir::PrintKind kind, std::uint64_t v);
  std::uint64_t applyIntrinsic(ir::IntrinsicKind kind,
                               std::span<const std::uint64_t> v);
  void maybeCapture();

  /// Mixed term of a parked (non-top) call frame at `depth` in frames_.
  [[nodiscard]] std::uint64_t frameTerm(std::uint64_t depth,
                                        const CallFrame& f) const noexcept;

  /// The interpreter loop. `Hooked` instantiations dispatch to hook_ and
  /// return early once it is exhausted; `Capturing` instantiations check the
  /// snapshot cadence at each instruction boundary; `Hashing` instantiations
  /// fold register writes into the incremental state hash and honor
  /// runToBoundary() pauses. When Hashing is false the generated code is
  /// identical to before state hashing existed.
  template <bool Hooked, bool Capturing, bool Hashing>
  void loop();

  /// Select the loop instantiation for the runtime hashing flag.
  template <bool Hooked>
  void dispatchLoop(bool capturing);

  /// Run the hook-free remainder on the direct-threaded backend (decoded
  /// stream from ThreadedCode::get, executed by detail::runThreadedLoop).
  /// Falls back to the reference loop for modules the decoder rejects.
  /// Preconditions: between instructions, hook-free/exhausted, not
  /// capturing, not hashing.
  void runThreaded();

  /// The threaded loop lives in its own translation unit (computed goto)
  /// and drives this machine's private state directly.
  friend void detail::runThreadedLoop(Machine* m, const ThreadedCode* code,
                                      const void* const** labelsOut);

  const ir::Module& mod_;
  ExecLimits limits_;
  ExecHook* hook_;
  Memory mem_;
  std::vector<CallFrame> frames_;
  std::vector<std::uint64_t> regs_;
  std::uint64_t sp_ = 0;
  std::uint64_t instructions_ = 0;
  std::uint64_t readCandidates_ = 0;
  std::uint64_t writeCandidates_ = 0;
  std::uint64_t storeCandidates_ = 0;
  bool halted_ = false;  ///< main returned
  std::uint64_t captureInterval_ = 0;  ///< 0 = not capturing
  std::uint64_t nextCaptureAt_ = 0;
  SnapshotSink snapshotSink_;
  ExecResult result_;
  // --- incremental state hash (ExecLimits::trackStateHash) ---
  bool hashing_ = false;
  std::uint64_t regsHash_ = 0;    ///< XOR of non-zero register terms
  std::uint64_t framesHash_ = 0;  ///< XOR of parked (non-top) frame terms
  std::uint64_t outputHash_ = statehash::kFnvBasis;  ///< rolling FNV-1a
  std::uint64_t pauseAt_ = ~0ULL;  ///< runToBoundary pause point
  /// Decoded stream for the threaded backend (fetched lazily on the first
  /// hook-free segment when limits_.dispatch == DispatchBackend::Threaded).
  std::shared_ptr<const ThreadedCode> threaded_;
};

}  // namespace onebit::vm
