// The direct-threaded execution loop (the DispatchBackend::Threaded fast
// path). Executes the pre-decoded stream of vm/threaded.hpp with one
// computed `goto *label` per instruction on GCC/Clang; other compilers run
// the same decoded stream through a switch (still much cheaper than the
// reference loop's per-execution ir::Instr decode).
//
// Semantics are a field-for-field replica of the hook-free, non-capturing,
// non-hashing instantiation of Machine::loop() in vm/machine.cpp — the
// differential backend fuzzer (tests/dispatch_differential_test.cpp) holds
// the two bit-identical over outputs, traps, counters, and the full post-run
// machine state hash. Invariants the replica must keep:
//   * the fuel check fires after fetch, before execution (a run that ends
//     FuelExhausted has NOT executed the fetched instruction);
//   * readCandidates_ counts fetched instructions with >= 1 register
//     operand; writeCandidates_ counts dest writes except Const/FrameAddr,
//     with Call's return value counted at Ret; storeCandidates_ counts only
//     committed stores;
//   * every exit resynchronizes the top frame's (block, ip) from the
//     current Op's provenance, so capture()/computeStateHash()/resume see
//     exactly the coordinates the reference loop would leave;
//   * the caller's coordinates are synchronized BEFORE pushFrame, keeping
//     the "caller.ip - 1 is the Call" invariant snapshots rely on.
#include <cstdint>
#include <limits>
#include <span>

#include "vm/machine.hpp"
#include "vm/threaded.hpp"

// The compiler gate. CMake passes -DONEBIT_COMPUTED_GOTO=0/1 after a
// feature check; standalone builds fall back to detecting the extension by
// compiler family.
#ifndef ONEBIT_COMPUTED_GOTO
#if defined(__GNUC__) || defined(__clang__)
#define ONEBIT_COMPUTED_GOTO 1
#else
#define ONEBIT_COMPUTED_GOTO 0
#endif
#endif

namespace onebit::vm::detail {

// OB_CASE introduces one opcode's body; OB_NEXT ends it by fetching and
// dispatching the next instruction. In computed-goto mode the bodies are
// labels and OB_NEXT is the fetch + `goto *label`; in portable mode the
// bodies are switch cases inside a for(;;) whose top performs the fetch,
// and OB_NEXT just leaves the switch.
#if ONEBIT_COMPUTED_GOTO
#define OB_CASE(name) Lbl_##name:
#define OB_NEXT()                       \
  do {                                  \
    op = &fnOps[pc++];                  \
    if (++instrs > fuel) {              \
      goto fuel_exhausted;              \
    }                                   \
    reads += op->countsRead;            \
    goto* op->label;                    \
  } while (0)
#else
#define OB_CASE(name) case ir::Opcode::name:
#define OB_NEXT() break
#endif

// Operand slot -> value (register read or immediate).
#define OB_VAL(A) ((A).reg != ir::kNoReg ? regs[(A).reg] : (A).imm)

// Destination write with the reference loop's gating: skipped entirely for
// dest-less instructions, counted per the pre-decoded flag.
#define OB_WRITE(V)                  \
  do {                               \
    if (op->dest != ir::kNoReg) {    \
      writes += op->countsWrite;     \
      regs[op->dest] = (V);          \
    }                                \
  } while (0)

// The instruction/candidate counters live in locals so the hot path never
// round-trips them through the Machine (nothing called from this loop reads
// them); every exit — and every callback that could observe or snapshot
// machine state — publishes them back first.
#define OB_FLUSH()                  \
  do {                              \
    m.instructions_ = instrs;       \
    m.readCandidates_ = reads;      \
    m.writeCandidates_ = writes;    \
    m.storeCandidates_ = stores;    \
  } while (0)

#define OB_TRAP(K)    \
  do {                \
    m.trap(K);        \
    goto sync_exit;   \
  } while (0)

void runThreadedLoop(Machine* mp, const ThreadedCode* codep,
                     const void* const** labelsOut) {
#if ONEBIT_COMPUTED_GOTO
  static const void* const kLabels[ThreadedCode::kNumOpcodes] = {
      &&Lbl_Add,     &&Lbl_Sub,    &&Lbl_Mul,    &&Lbl_SDiv,   &&Lbl_SRem,
      &&Lbl_And,     &&Lbl_Or,     &&Lbl_Xor,    &&Lbl_Shl,    &&Lbl_LShr,
      &&Lbl_AShr,    &&Lbl_FAdd,   &&Lbl_FSub,   &&Lbl_FMul,   &&Lbl_FDiv,
      &&Lbl_ICmpEq,  &&Lbl_ICmpNe, &&Lbl_ICmpLt, &&Lbl_ICmpLe, &&Lbl_ICmpGt,
      &&Lbl_ICmpGe,  &&Lbl_FCmpEq, &&Lbl_FCmpNe, &&Lbl_FCmpLt, &&Lbl_FCmpLe,
      &&Lbl_FCmpGt,  &&Lbl_FCmpGe, &&Lbl_SIToFP, &&Lbl_FPToSI, &&Lbl_Load,
      &&Lbl_Store,   &&Lbl_FrameAddr, &&Lbl_Br,  &&Lbl_CondBr, &&Lbl_Call,
      &&Lbl_Ret,     &&Lbl_Const,  &&Lbl_Move,   &&Lbl_Intrinsic,
      &&Lbl_Print,   &&Lbl_Alloc,  &&Lbl_Abort,
  };
  if (labelsOut != nullptr) {
    *labelsOut = kLabels;
    return;
  }
#else
  if (labelsOut != nullptr) {
    *labelsOut = nullptr;
    return;
  }
#endif

  Machine& m = *mp;
  const ThreadedCode& code = *codep;
  const ThreadedCode::Arg* const argPool = code.args.data();
  const std::uint64_t fuel = m.limits_.maxInstructions;

  // Per-frame execution state, cached in locals and refreshed on every
  // call/ret (regs_ only reallocates there). Declared without initializers
  // so the computed gotos below do not jump past an initialization.
  const ThreadedCode::FnCode* fn;
  const ThreadedCode::Op* fnOps;
  const ThreadedCode::Op* op;
  std::uint64_t* regs;
  std::uint64_t frameBase;
  std::uint32_t pc;
  TrapKind t;
  std::uint64_t scratch[ThreadedCode::kMaxOperands];
  std::uint64_t instrs = m.instructions_;
  std::uint64_t reads = m.readCandidates_;
  std::uint64_t writes = m.writeCandidates_;
  std::uint64_t stores = m.storeCandidates_;

  {
    // Entry — possibly mid-block, mid-call-stack (snapshot resume, or the
    // hooked reference loop handing over after exhaustion): the stream
    // position of (block, ip) is blockStart[block] + ip.
    const auto& frame = m.frames_.back();
    fn = &code.fns[static_cast<std::size_t>(frame.fn -
                                            m.mod_.functions.data())];
    fnOps = code.ops.data() + fn->opBase;
    regs = m.regs_.data() + frame.regBase;
    frameBase = frame.frameBase;
    pc = fn->blockStart[frame.block] + frame.ip;
  }

#if ONEBIT_COMPUTED_GOTO
  OB_NEXT();
#else
  for (;;) {
    op = &fnOps[pc++];
    if (++instrs > fuel) goto fuel_exhausted;
    reads += op->countsRead;
    switch (op->op) {
#endif

  OB_CASE(Add) {
    const ThreadedCode::Arg* a = argPool + op->argBase;
    OB_WRITE(OB_VAL(a[0]) + OB_VAL(a[1]));
    OB_NEXT();
  }
  OB_CASE(Sub) {
    const ThreadedCode::Arg* a = argPool + op->argBase;
    OB_WRITE(OB_VAL(a[0]) - OB_VAL(a[1]));
    OB_NEXT();
  }
  OB_CASE(Mul) {
    const ThreadedCode::Arg* a = argPool + op->argBase;
    OB_WRITE(OB_VAL(a[0]) * OB_VAL(a[1]));
    OB_NEXT();
  }
  OB_CASE(SDiv) {
    const ThreadedCode::Arg* a = argPool + op->argBase;
    const std::uint64_t v0 = OB_VAL(a[0]);
    const auto num = ir::asI64(v0);
    const auto den = ir::asI64(OB_VAL(a[1]));
    if (den == 0) OB_TRAP(TrapKind::DivByZero);
    if (den == -1 && num == std::numeric_limits<std::int64_t>::min()) {
      OB_WRITE(v0);  // wraps, like x86 would fault; define it
    } else {
      OB_WRITE(ir::fromI64(num / den));
    }
    OB_NEXT();
  }
  OB_CASE(SRem) {
    const ThreadedCode::Arg* a = argPool + op->argBase;
    const auto num = ir::asI64(OB_VAL(a[0]));
    const auto den = ir::asI64(OB_VAL(a[1]));
    if (den == 0) OB_TRAP(TrapKind::DivByZero);
    OB_WRITE(den == -1 ? 0 : ir::fromI64(num % den));
    OB_NEXT();
  }
  OB_CASE(And) {
    const ThreadedCode::Arg* a = argPool + op->argBase;
    OB_WRITE(OB_VAL(a[0]) & OB_VAL(a[1]));
    OB_NEXT();
  }
  OB_CASE(Or) {
    const ThreadedCode::Arg* a = argPool + op->argBase;
    OB_WRITE(OB_VAL(a[0]) | OB_VAL(a[1]));
    OB_NEXT();
  }
  OB_CASE(Xor) {
    const ThreadedCode::Arg* a = argPool + op->argBase;
    OB_WRITE(OB_VAL(a[0]) ^ OB_VAL(a[1]));
    OB_NEXT();
  }
  OB_CASE(Shl) {
    const ThreadedCode::Arg* a = argPool + op->argBase;
    OB_WRITE(OB_VAL(a[0]) << (OB_VAL(a[1]) & 63U));
    OB_NEXT();
  }
  OB_CASE(LShr) {
    const ThreadedCode::Arg* a = argPool + op->argBase;
    OB_WRITE(OB_VAL(a[0]) >> (OB_VAL(a[1]) & 63U));
    OB_NEXT();
  }
  OB_CASE(AShr) {
    const ThreadedCode::Arg* a = argPool + op->argBase;
    OB_WRITE(ir::fromI64(ir::asI64(OB_VAL(a[0])) >> (OB_VAL(a[1]) & 63U)));
    OB_NEXT();
  }
  OB_CASE(FAdd) {
    const ThreadedCode::Arg* a = argPool + op->argBase;
    OB_WRITE(ir::fromF64(ir::asF64(OB_VAL(a[0])) + ir::asF64(OB_VAL(a[1]))));
    OB_NEXT();
  }
  OB_CASE(FSub) {
    const ThreadedCode::Arg* a = argPool + op->argBase;
    OB_WRITE(ir::fromF64(ir::asF64(OB_VAL(a[0])) - ir::asF64(OB_VAL(a[1]))));
    OB_NEXT();
  }
  OB_CASE(FMul) {
    const ThreadedCode::Arg* a = argPool + op->argBase;
    OB_WRITE(ir::fromF64(ir::asF64(OB_VAL(a[0])) * ir::asF64(OB_VAL(a[1]))));
    OB_NEXT();
  }
  OB_CASE(FDiv) {
    const ThreadedCode::Arg* a = argPool + op->argBase;
    OB_WRITE(ir::fromF64(ir::asF64(OB_VAL(a[0])) / ir::asF64(OB_VAL(a[1]))));
    OB_NEXT();
  }
  OB_CASE(ICmpEq) {
    const ThreadedCode::Arg* a = argPool + op->argBase;
    OB_WRITE(OB_VAL(a[0]) == OB_VAL(a[1]) ? 1 : 0);
    OB_NEXT();
  }
  OB_CASE(ICmpNe) {
    const ThreadedCode::Arg* a = argPool + op->argBase;
    OB_WRITE(OB_VAL(a[0]) != OB_VAL(a[1]) ? 1 : 0);
    OB_NEXT();
  }
  OB_CASE(ICmpLt) {
    const ThreadedCode::Arg* a = argPool + op->argBase;
    OB_WRITE(ir::asI64(OB_VAL(a[0])) < ir::asI64(OB_VAL(a[1])) ? 1 : 0);
    OB_NEXT();
  }
  OB_CASE(ICmpLe) {
    const ThreadedCode::Arg* a = argPool + op->argBase;
    OB_WRITE(ir::asI64(OB_VAL(a[0])) <= ir::asI64(OB_VAL(a[1])) ? 1 : 0);
    OB_NEXT();
  }
  OB_CASE(ICmpGt) {
    const ThreadedCode::Arg* a = argPool + op->argBase;
    OB_WRITE(ir::asI64(OB_VAL(a[0])) > ir::asI64(OB_VAL(a[1])) ? 1 : 0);
    OB_NEXT();
  }
  OB_CASE(ICmpGe) {
    const ThreadedCode::Arg* a = argPool + op->argBase;
    OB_WRITE(ir::asI64(OB_VAL(a[0])) >= ir::asI64(OB_VAL(a[1])) ? 1 : 0);
    OB_NEXT();
  }
  OB_CASE(FCmpEq) {
    const ThreadedCode::Arg* a = argPool + op->argBase;
    OB_WRITE(ir::asF64(OB_VAL(a[0])) == ir::asF64(OB_VAL(a[1])) ? 1 : 0);
    OB_NEXT();
  }
  OB_CASE(FCmpNe) {
    const ThreadedCode::Arg* a = argPool + op->argBase;
    OB_WRITE(ir::asF64(OB_VAL(a[0])) != ir::asF64(OB_VAL(a[1])) ? 1 : 0);
    OB_NEXT();
  }
  OB_CASE(FCmpLt) {
    const ThreadedCode::Arg* a = argPool + op->argBase;
    OB_WRITE(ir::asF64(OB_VAL(a[0])) < ir::asF64(OB_VAL(a[1])) ? 1 : 0);
    OB_NEXT();
  }
  OB_CASE(FCmpLe) {
    const ThreadedCode::Arg* a = argPool + op->argBase;
    OB_WRITE(ir::asF64(OB_VAL(a[0])) <= ir::asF64(OB_VAL(a[1])) ? 1 : 0);
    OB_NEXT();
  }
  OB_CASE(FCmpGt) {
    const ThreadedCode::Arg* a = argPool + op->argBase;
    OB_WRITE(ir::asF64(OB_VAL(a[0])) > ir::asF64(OB_VAL(a[1])) ? 1 : 0);
    OB_NEXT();
  }
  OB_CASE(FCmpGe) {
    const ThreadedCode::Arg* a = argPool + op->argBase;
    OB_WRITE(ir::asF64(OB_VAL(a[0])) >= ir::asF64(OB_VAL(a[1])) ? 1 : 0);
    OB_NEXT();
  }
  OB_CASE(SIToFP) {
    const ThreadedCode::Arg* a = argPool + op->argBase;
    OB_WRITE(ir::fromF64(static_cast<double>(ir::asI64(OB_VAL(a[0])))));
    OB_NEXT();
  }
  OB_CASE(FPToSI) {
    const ThreadedCode::Arg* a = argPool + op->argBase;
    OB_WRITE(ir::fromI64(saturatingFpToSi(ir::asF64(OB_VAL(a[0])))));
    OB_NEXT();
  }
  OB_CASE(Load) {
    const ThreadedCode::Arg* a = argPool + op->argBase;
    t = TrapKind::None;
    const std::uint64_t v = m.mem_.load(OB_VAL(a[0]), op->aux, t);
    if (t != TrapKind::None) OB_TRAP(t);
    OB_WRITE(v);
    OB_NEXT();
  }
  OB_CASE(Store) {
    const ThreadedCode::Arg* a = argPool + op->argBase;
    t = TrapKind::None;
    m.mem_.store(OB_VAL(a[0]), op->aux, OB_VAL(a[1]), t);
    if (t != TrapKind::None) OB_TRAP(t);
    // Only committed stores are MemoryData candidates.
    ++stores;
    OB_NEXT();
  }
  OB_CASE(FrameAddr) {
    OB_WRITE(frameBase + op->imm);
    OB_NEXT();
  }
  OB_CASE(Br) {
    pc = op->target;
    OB_NEXT();
  }
  OB_CASE(CondBr) {
    const ThreadedCode::Arg* a = argPool + op->argBase;
    pc = OB_VAL(a[0]) != 0 ? op->target : op->aux;
    OB_NEXT();
  }
  OB_CASE(Call) {
    const ThreadedCode::Arg* a = argPool + op->argBase;
    const unsigned n = op->nops;
    for (unsigned i = 0; i < n; ++i) scratch[i] = OB_VAL(a[i]);
    {
      // Park the caller at the instruction after the call BEFORE pushing:
      // pushFrame may trap (depth/stack overflow), and snapshots derive
      // pendingCall from "caller.ip - 1 is the Call".
      auto& caller = m.frames_.back();
      caller.block = op->block;
      caller.ip = op->ip + 1;
      const ir::Instr* callInstr =
          &caller.fn->blocks[op->block].instrs[op->ip];
      m.pushFrame(op->aux, std::span(scratch, n), callInstr);
    }
    if (m.result_.status != ExecStatus::Ok) {
      OB_FLUSH();
      return;  // push trapped; caller coordinates already synced
    }
    {
      const auto& callee = m.frames_.back();
      fn = &code.fns[op->aux];
      fnOps = code.ops.data() + fn->opBase;
      regs = m.regs_.data() + callee.regBase;
      frameBase = callee.frameBase;
      pc = 0;  // blockStart[0] is always 0: execution starts at the entry block
    }
    OB_NEXT();
  }
  OB_CASE(Ret) {
    const std::uint64_t retVal =
        op->nops > 0 ? OB_VAL(argPool[op->argBase]) : 0;
    const ir::Instr* call = m.frames_.back().pendingCall;
    m.popFrame();
    if (m.frames_.empty()) {
      m.result_.returnValue = ir::asI64(retVal);
      m.halted_ = true;
      OB_FLUSH();
      return;  // main returned
    }
    {
      const auto& caller = m.frames_.back();
      fn = &code.fns[static_cast<std::size_t>(caller.fn -
                                              m.mod_.functions.data())];
      fnOps = code.ops.data() + fn->opBase;
      regs = m.regs_.data() + caller.regBase;
      frameBase = caller.frameBase;
      pc = fn->blockStart[caller.block] + caller.ip;
    }
    if (call != nullptr && call->dest != ir::kNoReg) {
      ++writes;
      regs[call->dest] = retVal;
    }
    OB_NEXT();
  }
  OB_CASE(Const) {
    OB_WRITE(op->imm);
    OB_NEXT();
  }
  OB_CASE(Move) {
    const ThreadedCode::Arg* a = argPool + op->argBase;
    OB_WRITE(OB_VAL(a[0]));
    OB_NEXT();
  }
  OB_CASE(Intrinsic) {
    const ThreadedCode::Arg* a = argPool + op->argBase;
    const unsigned n = op->nops;
    for (unsigned i = 0; i < n; ++i) scratch[i] = OB_VAL(a[i]);
    OB_WRITE(m.applyIntrinsic(op->intrinsic, std::span(scratch, n)));
    OB_NEXT();
  }
  OB_CASE(Print) {
    const ThreadedCode::Arg* a = argPool + op->argBase;
    m.printValue(op->printKind, OB_VAL(a[0]));
    OB_NEXT();
  }
  OB_CASE(Alloc) {
    const ThreadedCode::Arg* a = argPool + op->argBase;
    t = TrapKind::None;
    const std::uint64_t v = m.mem_.alloc(ir::asI64(OB_VAL(a[0])), t);
    if (t != TrapKind::None) OB_TRAP(t);
    OB_WRITE(v);
    OB_NEXT();
  }
  OB_CASE(Abort) {
    m.trap(TrapKind::Abort);
    goto sync_exit;
  }

#if !ONEBIT_COMPUTED_GOTO
    }
  }
#endif

fuel_exhausted:
  m.result_.status = ExecStatus::FuelExhausted;
  // fall through to sync_exit
sync_exit : {
  // Leave the top frame's coordinates exactly where the reference loop
  // would: the fetched instruction's slot, ip already advanced past it.
  auto& frame = m.frames_.back();
  frame.block = op->block;
  frame.ip = op->ip + 1;
  OB_FLUSH();
}
}

#undef OB_CASE
#undef OB_NEXT
#undef OB_VAL
#undef OB_WRITE
#undef OB_FLUSH
#undef OB_TRAP

}  // namespace onebit::vm::detail
