// Trap taxonomy of the onebit VM.
//
// These mirror the hardware exceptions the paper's outcome classification
// relies on (§III-E): segmentation faults, misaligned accesses, arithmetic
// errors (division by zero) and aborts. A trapped run is classified as
// "Detected by Hardware Exceptions".
#pragma once

#include <string_view>

namespace onebit::vm {

enum class TrapKind : unsigned char {
  None,
  SegFault,    ///< access outside a mapped segment / stack overflow
  Misaligned,  ///< 8-byte access not 8-byte aligned
  DivByZero,   ///< integer division or remainder by zero
  Abort,       ///< program raised abort (self-termination)
};

std::string_view trapName(TrapKind k) noexcept;

}  // namespace onebit::vm
