#include "vm/trap.hpp"

namespace onebit::vm {

std::string_view trapName(TrapKind k) noexcept {
  switch (k) {
    case TrapKind::None: return "none";
    case TrapKind::SegFault: return "segfault";
    case TrapKind::Misaligned: return "misaligned";
    case TrapKind::DivByZero: return "div-by-zero";
    case TrapKind::Abort: return "abort";
  }
  return "?";
}

}  // namespace onebit::vm
