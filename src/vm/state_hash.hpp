// Primitives of the VM's incremental state hash.
//
// The machine state hash is an XOR-homomorphic hash: every (location, value)
// cell of the state contributes one mixed 64-bit term, the state hash XORs
// the terms of all *non-zero* cells, and a write updates it in O(1) by
// XOR-ing out the old cell's term and XOR-ing in the new one. Incremental
// maintenance and a from-scratch recomputation therefore agree by
// construction — the invariant tests/state_hash_test.cpp machine-checks.
//
// Zero-valued cells contribute nothing, so the giant zero-initialized
// regions (fresh stack pages, zeroed registers, zero-filled heap blocks)
// are free: pushing a frame of zeroed registers or growing the heap does
// not touch the hash.
//
// Each state component gets its own salt so a register holding value v can
// never cancel a memory word holding v at a numerically equal location.
#pragma once

#include <cstdint>

namespace onebit::vm::statehash {

/// SplitMix64 finalizer: full-avalanche 64-bit mixer (Blackman & Vigna).
inline constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline constexpr std::uint64_t kRegSalt = 0x9d39'247e'3377'6d41ULL;
inline constexpr std::uint64_t kMemSalt = 0x1ef9'1d8c'5afc'82a7ULL;
inline constexpr std::uint64_t kFrameSalt = 0x6b8f'ce74'21c5'0b63ULL;
inline constexpr std::uint64_t kStateSalt = 0x0b17'ec5e'ba5e'ba11ULL;

/// FNV-1a constants — identical to util::hashBytes, so the rolling output
/// hash always equals hashBytes(output so far).
inline constexpr std::uint64_t kFnvBasis = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/// Term of register slot `index` (absolute index into the shared register
/// stack) holding the non-zero value `v`.
inline constexpr std::uint64_t regTerm(std::uint64_t index,
                                       std::uint64_t v) noexcept {
  return mix64(mix64(kRegSalt ^ (index + 1)) ^ v);
}

/// Term of the aligned 8-byte memory word at virtual address `wordAddr`
/// holding the non-zero little-endian value `word`.
inline constexpr std::uint64_t memTerm(std::uint64_t wordAddr,
                                       std::uint64_t word) noexcept {
  return mix64(mix64(kMemSalt ^ wordAddr) ^ word);
}

/// Fold one FNV-1a byte into a rolling output hash.
inline constexpr std::uint64_t fnvByte(std::uint64_t h,
                                       unsigned char c) noexcept {
  return (h ^ c) * kFnvPrime;
}

}  // namespace onebit::vm::statehash
