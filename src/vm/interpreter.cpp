#include "vm/interpreter.hpp"

#include <array>
#include <cmath>
#include <cstdio>
#include <limits>
#include <vector>

namespace onebit::vm {

namespace {

using ir::Instr;
using ir::Opcode;
using ir::Reg;
using ir::Type;

struct CallFrame {
  const ir::Function* fn = nullptr;
  std::uint32_t block = 0;
  std::uint32_t ip = 0;           ///< next instruction index within block
  std::size_t regBase = 0;        ///< base into the shared register stack
  std::uint64_t frameBase = 0;    ///< base address of this frame's stack slot
  const Instr* pendingCall = nullptr;  ///< call awaiting a return value
};

class Machine {
 public:
  Machine(const ir::Module& mod, const ExecLimits& limits, ExecHook* hook)
      : mod_(mod),
        limits_(limits),
        hook_(hook),
        mem_(mod.globalData, limits.stackBytes, limits.maxHeapBytes) {}

  ExecResult run() {
    pushFrame(mod_.entry, {}, nullptr);
    if (result_.status != ExecStatus::Ok) return finish();
    loop();
    return finish();
  }

 private:
  ExecResult finish() {
    result_.instructions = instructions_;
    result_.readCandidates = readCandidates_;
    result_.writeCandidates = writeCandidates_;
    return std::move(result_);
  }

  void trap(TrapKind k) {
    result_.status = ExecStatus::Trapped;
    result_.trap = k;
  }

  void pushFrame(std::uint32_t fnId, std::span<const std::uint64_t> args,
                 const Instr* pendingCall) {
    const ir::Function& fn = mod_.functions[fnId];
    if (frames_.size() >= limits_.maxCallDepth) {
      trap(TrapKind::SegFault);  // runaway recursion = stack overflow
      return;
    }
    const std::uint64_t alignedFrame =
        (static_cast<std::uint64_t>(fn.frameBytes) + 7U) & ~7ULL;
    if (sp_ + alignedFrame > mem_.stackBytes()) {
      trap(TrapKind::SegFault);
      return;
    }
    CallFrame frame;
    frame.fn = &fn;
    frame.regBase = regs_.size();
    frame.frameBase = ir::kStackBase + sp_;
    frame.pendingCall = pendingCall;
    sp_ += alignedFrame;
    regs_.resize(regs_.size() + fn.numRegs, 0);
    for (std::size_t i = 0; i < args.size() && i < fn.numParams; ++i) {
      regs_[frame.regBase + i] = args[i];
    }
    frames_.push_back(frame);
  }

  void popFrame() {
    const CallFrame& frame = frames_.back();
    const std::uint64_t alignedFrame =
        (static_cast<std::uint64_t>(frame.fn->frameBytes) + 7U) & ~7ULL;
    sp_ -= alignedFrame;
    regs_.resize(frame.regBase);
    frames_.pop_back();
  }

  void appendOutput(const char* data, std::size_t n) {
    if (result_.output.size() + n > limits_.maxOutputBytes) {
      result_.outputTruncated = true;
      return;
    }
    result_.output.append(data, n);
  }

  void printValue(const Instr& in, std::uint64_t v) {
    char buf[64];
    switch (in.printKind) {
      case ir::PrintKind::I64: {
        const int n = std::snprintf(buf, sizeof buf, "%lld",
                                    static_cast<long long>(ir::asI64(v)));
        appendOutput(buf, static_cast<std::size_t>(n));
        break;
      }
      case ir::PrintKind::F64: {
        double d = ir::asF64(v);
        // Normalize non-finite and negative-zero values so the golden
        // comparison is well defined across platforms.
        if (std::isnan(d)) {
          appendOutput("nan", 3);
          break;
        }
        const int n = std::snprintf(buf, sizeof buf, "%.6f", d);
        appendOutput(buf, static_cast<std::size_t>(n));
        break;
      }
      case ir::PrintKind::Char: {
        buf[0] = static_cast<char>(v & 0xff);
        appendOutput(buf, 1);
        break;
      }
    }
  }

  static std::int64_t saturatingFpToSi(double d) noexcept {
    if (std::isnan(d)) return 0;
    if (d >= 9.2233720368547758e18) return std::numeric_limits<std::int64_t>::max();
    if (d <= -9.2233720368547758e18) return std::numeric_limits<std::int64_t>::min();
    return static_cast<std::int64_t>(d);
  }

  std::uint64_t applyIntrinsic(const Instr& in,
                               std::span<const std::uint64_t> v) {
    const double a = ir::asF64(v[0]);
    const double b = v.size() > 1 ? ir::asF64(v[1]) : 0.0;
    double r = 0.0;
    switch (in.intrinsic) {
      case ir::IntrinsicKind::Sqrt: r = std::sqrt(a); break;
      case ir::IntrinsicKind::Sin: r = std::sin(a); break;
      case ir::IntrinsicKind::Cos: r = std::cos(a); break;
      case ir::IntrinsicKind::Tan: r = std::tan(a); break;
      case ir::IntrinsicKind::Atan: r = std::atan(a); break;
      case ir::IntrinsicKind::Exp: r = std::exp(a); break;
      case ir::IntrinsicKind::Log: r = std::log(a); break;
      case ir::IntrinsicKind::Fabs: r = std::fabs(a); break;
      case ir::IntrinsicKind::Floor: r = std::floor(a); break;
      case ir::IntrinsicKind::Ceil: r = std::ceil(a); break;
      case ir::IntrinsicKind::Pow: r = std::pow(a, b); break;
      case ir::IntrinsicKind::Atan2: r = std::atan2(a, b); break;
    }
    return ir::fromF64(r);
  }

  void loop() {
    while (result_.status == ExecStatus::Ok) {
      CallFrame& frame = frames_.back();
      const ir::BasicBlock& bb = frame.fn->blocks[frame.block];
      const Instr& in = bb.instrs[frame.ip++];

      if (++instructions_ > limits_.maxInstructions) {
        result_.status = ExecStatus::FuelExhausted;
        return;
      }

      // Gather operand values; give the read hook a chance to corrupt them.
      std::array<std::uint64_t, 8> vals{};
      std::array<bool, 8> isReg{};
      const std::size_t nops = in.operands.size();
      bool anyReg = false;
      for (std::size_t i = 0; i < nops; ++i) {
        const ir::Operand& op = in.operands[i];
        if (op.isReg()) {
          vals[i] = regs_[frame.regBase + op.reg];
          isReg[i] = true;
          anyReg = true;
        } else {
          vals[i] = op.imm;
        }
      }
      if (anyReg) {
        const std::uint64_t readIdx = readCandidates_++;
        if (hook_ != nullptr) {
          hook_->onRead(readIdx, instructions_, in,
                        std::span(vals.data(), nops),
                        std::span(isReg.data(), nops));
        }
      }

      std::uint64_t destValue = 0;
      bool writeDest = false;
      TrapKind t = TrapKind::None;

      switch (in.op) {
        case Opcode::Add:
          destValue = vals[0] + vals[1];
          writeDest = true;
          break;
        case Opcode::Sub:
          destValue = vals[0] - vals[1];
          writeDest = true;
          break;
        case Opcode::Mul:
          destValue = vals[0] * vals[1];
          writeDest = true;
          break;
        case Opcode::SDiv: {
          const auto num = ir::asI64(vals[0]);
          const auto den = ir::asI64(vals[1]);
          if (den == 0) {
            trap(TrapKind::DivByZero);
            return;
          }
          if (den == -1 && num == std::numeric_limits<std::int64_t>::min()) {
            destValue = vals[0];  // wraps, like x86 would fault; define it
          } else {
            destValue = ir::fromI64(num / den);
          }
          writeDest = true;
          break;
        }
        case Opcode::SRem: {
          const auto num = ir::asI64(vals[0]);
          const auto den = ir::asI64(vals[1]);
          if (den == 0) {
            trap(TrapKind::DivByZero);
            return;
          }
          if (den == -1) {
            destValue = 0;
          } else {
            destValue = ir::fromI64(num % den);
          }
          writeDest = true;
          break;
        }
        case Opcode::And: destValue = vals[0] & vals[1]; writeDest = true; break;
        case Opcode::Or: destValue = vals[0] | vals[1]; writeDest = true; break;
        case Opcode::Xor: destValue = vals[0] ^ vals[1]; writeDest = true; break;
        case Opcode::Shl:
          destValue = vals[0] << (vals[1] & 63U);
          writeDest = true;
          break;
        case Opcode::LShr:
          destValue = vals[0] >> (vals[1] & 63U);
          writeDest = true;
          break;
        case Opcode::AShr:
          destValue =
              ir::fromI64(ir::asI64(vals[0]) >> (vals[1] & 63U));
          writeDest = true;
          break;
        case Opcode::FAdd:
          destValue = ir::fromF64(ir::asF64(vals[0]) + ir::asF64(vals[1]));
          writeDest = true;
          break;
        case Opcode::FSub:
          destValue = ir::fromF64(ir::asF64(vals[0]) - ir::asF64(vals[1]));
          writeDest = true;
          break;
        case Opcode::FMul:
          destValue = ir::fromF64(ir::asF64(vals[0]) * ir::asF64(vals[1]));
          writeDest = true;
          break;
        case Opcode::FDiv:
          destValue = ir::fromF64(ir::asF64(vals[0]) / ir::asF64(vals[1]));
          writeDest = true;
          break;
        case Opcode::ICmpEq:
          destValue = vals[0] == vals[1] ? 1 : 0;
          writeDest = true;
          break;
        case Opcode::ICmpNe:
          destValue = vals[0] != vals[1] ? 1 : 0;
          writeDest = true;
          break;
        case Opcode::ICmpLt:
          destValue = ir::asI64(vals[0]) < ir::asI64(vals[1]) ? 1 : 0;
          writeDest = true;
          break;
        case Opcode::ICmpLe:
          destValue = ir::asI64(vals[0]) <= ir::asI64(vals[1]) ? 1 : 0;
          writeDest = true;
          break;
        case Opcode::ICmpGt:
          destValue = ir::asI64(vals[0]) > ir::asI64(vals[1]) ? 1 : 0;
          writeDest = true;
          break;
        case Opcode::ICmpGe:
          destValue = ir::asI64(vals[0]) >= ir::asI64(vals[1]) ? 1 : 0;
          writeDest = true;
          break;
        case Opcode::FCmpEq:
          destValue = ir::asF64(vals[0]) == ir::asF64(vals[1]) ? 1 : 0;
          writeDest = true;
          break;
        case Opcode::FCmpNe:
          destValue = ir::asF64(vals[0]) != ir::asF64(vals[1]) ? 1 : 0;
          writeDest = true;
          break;
        case Opcode::FCmpLt:
          destValue = ir::asF64(vals[0]) < ir::asF64(vals[1]) ? 1 : 0;
          writeDest = true;
          break;
        case Opcode::FCmpLe:
          destValue = ir::asF64(vals[0]) <= ir::asF64(vals[1]) ? 1 : 0;
          writeDest = true;
          break;
        case Opcode::FCmpGt:
          destValue = ir::asF64(vals[0]) > ir::asF64(vals[1]) ? 1 : 0;
          writeDest = true;
          break;
        case Opcode::FCmpGe:
          destValue = ir::asF64(vals[0]) >= ir::asF64(vals[1]) ? 1 : 0;
          writeDest = true;
          break;
        case Opcode::SIToFP:
          destValue = ir::fromF64(static_cast<double>(ir::asI64(vals[0])));
          writeDest = true;
          break;
        case Opcode::FPToSI:
          destValue = ir::fromI64(saturatingFpToSi(ir::asF64(vals[0])));
          writeDest = true;
          break;
        case Opcode::Load:
          destValue = mem_.load(vals[0], in.width, t);
          if (t != TrapKind::None) {
            trap(t);
            return;
          }
          writeDest = true;
          break;
        case Opcode::Store:
          mem_.store(vals[0], in.width, vals[1], t);
          if (t != TrapKind::None) {
            trap(t);
            return;
          }
          break;
        case Opcode::FrameAddr:
          destValue = frame.frameBase + static_cast<std::uint64_t>(in.offset);
          writeDest = true;
          break;
        case Opcode::Br:
          frame.block = in.target0;
          frame.ip = 0;
          continue;
        case Opcode::CondBr:
          frame.block = vals[0] != 0 ? in.target0 : in.target1;
          frame.ip = 0;
          continue;
        case Opcode::Call: {
          pushFrame(in.callee, std::span(vals.data(), nops), &in);
          continue;
        }
        case Opcode::Ret: {
          const std::uint64_t retVal = nops > 0 ? vals[0] : 0;
          const Instr* call = frame.pendingCall;
          popFrame();
          if (frames_.empty()) {
            result_.returnValue = ir::asI64(retVal);
            return;  // main returned
          }
          if (call != nullptr && call->dest != ir::kNoReg) {
            std::uint64_t v = retVal;
            const std::uint64_t writeIdx = writeCandidates_++;
            if (hook_ != nullptr)
              hook_->onWrite(writeIdx, instructions_, *call, v);
            regs_[frames_.back().regBase + call->dest] = v;
          }
          continue;
        }
        case Opcode::Const:
          destValue = in.imm;
          writeDest = true;
          break;
        case Opcode::Move:
          destValue = vals[0];
          writeDest = true;
          break;
        case Opcode::Intrinsic:
          destValue = applyIntrinsic(in, std::span(vals.data(), nops));
          writeDest = true;
          break;
        case Opcode::Print:
          printValue(in, vals[0]);
          break;
        case Opcode::Alloc: {
          destValue = mem_.alloc(ir::asI64(vals[0]), t);
          if (t != TrapKind::None) {
            trap(t);
            return;
          }
          writeDest = true;
          break;
        }
        case Opcode::Abort:
          trap(TrapKind::Abort);
          return;
      }

      if (writeDest && in.dest != ir::kNoReg) {
        // Const/FrameAddr materialize immediates; LLVM has no such
        // instructions (constants are operands there), so they are not
        // inject-on-write candidates.
        if (in.op != Opcode::Const && in.op != Opcode::FrameAddr) {
          const std::uint64_t writeIdx = writeCandidates_++;
          if (hook_ != nullptr)
            hook_->onWrite(writeIdx, instructions_, in, destValue);
        }
        regs_[frame.regBase + in.dest] = destValue;
      }
    }
  }

  const ir::Module& mod_;
  const ExecLimits& limits_;
  ExecHook* hook_;
  Memory mem_;
  std::vector<CallFrame> frames_;
  std::vector<std::uint64_t> regs_;
  std::uint64_t sp_ = 0;
  std::uint64_t instructions_ = 0;
  std::uint64_t readCandidates_ = 0;
  std::uint64_t writeCandidates_ = 0;
  ExecResult result_;
};

}  // namespace

ExecResult execute(const ir::Module& mod, const ExecLimits& limits,
                   ExecHook* hook) {
  Machine m(mod, limits, hook);
  return m.run();
}

}  // namespace onebit::vm
