#include "vm/interpreter.hpp"

#include "vm/machine.hpp"

namespace onebit::vm {

ExecResult execute(const ir::Module& mod, const ExecLimits& limits,
                   ExecHook* hook) {
  Machine m(mod, limits, hook);
  return m.run();
}

}  // namespace onebit::vm
