#include "vm/threaded.hpp"

#include <mutex>
#include <unordered_map>

#include "util/rng.hpp"

namespace onebit::vm {

namespace {

std::uint64_t hashInstr(std::uint64_t h, const ir::Instr& in) noexcept {
  using util::hashCombine;
  h = hashCombine(h, static_cast<std::uint64_t>(in.op) |
                         (static_cast<std::uint64_t>(in.type) << 8) |
                         (static_cast<std::uint64_t>(in.intrinsic) << 16) |
                         (static_cast<std::uint64_t>(in.printKind) << 24));
  h = hashCombine(h, (static_cast<std::uint64_t>(in.dest) << 32) | in.width);
  h = hashCombine(h, (static_cast<std::uint64_t>(in.target0) << 32) |
                         in.target1);
  h = hashCombine(h, in.callee);
  h = hashCombine(h, static_cast<std::uint64_t>(in.offset));
  h = hashCombine(h, in.imm);
  h = hashCombine(h, in.operands.size());
  for (const ir::Operand& o : in.operands) {
    h = hashCombine(h, o.isReg() ? (1ULL << 32) | o.reg : 0ULL);
    h = hashCombine(h, o.isReg() ? 0ULL : o.imm);
  }
  return h;
}

/// Decode `mod` into a fresh stream, or nullptr for unsupported shapes.
std::shared_ptr<const ThreadedCode> build(const ir::Module& mod,
                                          std::uint64_t fingerprint) {
  // The label table is owned by the loop translation unit; null labels mean
  // the portable loop (switch over Op::op) runs the stream instead.
  const void* const* labels = nullptr;
  detail::runThreadedLoop(nullptr, nullptr, &labels);

  auto code = std::make_shared<ThreadedCode>();
  code->fingerprint = fingerprint;
  code->fns.reserve(mod.functions.size());
  for (const ir::Function& fn : mod.functions) {
    ThreadedCode::FnCode fc;
    fc.opBase = static_cast<std::uint32_t>(code->ops.size());
    fc.blockStart.reserve(fn.blocks.size());
    std::uint32_t local = 0;
    for (const ir::BasicBlock& bb : fn.blocks) {
      fc.blockStart.push_back(local);
      local += static_cast<std::uint32_t>(bb.instrs.size());
    }
    for (std::size_t bi = 0; bi < fn.blocks.size(); ++bi) {
      const ir::BasicBlock& bb = fn.blocks[bi];
      for (std::size_t ii = 0; ii < bb.instrs.size(); ++ii) {
        const ir::Instr& in = bb.instrs[ii];
        if (in.operands.size() > ThreadedCode::kMaxOperands) return nullptr;
        ThreadedCode::Op op;
        op.op = in.op;
        if (labels != nullptr) {
          op.label = labels[static_cast<std::size_t>(in.op)];
        }
        op.block = static_cast<std::uint32_t>(bi);
        op.ip = static_cast<std::uint32_t>(ii);
        op.dest = in.dest;
        op.nops = static_cast<std::uint8_t>(in.operands.size());
        op.argBase = static_cast<std::uint32_t>(code->args.size());
        bool anyReg = false;
        for (const ir::Operand& o : in.operands) {
          ThreadedCode::Arg a;
          if (o.isReg()) {
            a.reg = o.reg;
            anyReg = true;
          } else {
            a.imm = o.imm;
          }
          code->args.push_back(a);
        }
        op.countsRead = anyReg ? 1 : 0;
        // Mirrors the reference loop's write-candidate gate: dest writes
        // count except for Const/FrameAddr (immediate materialization) —
        // and Call/Ret, whose return-value write is counted at Ret.
        op.countsWrite =
            (in.dest != ir::kNoReg && in.op != ir::Opcode::Const &&
             in.op != ir::Opcode::FrameAddr && in.op != ir::Opcode::Call)
                ? 1
                : 0;
        switch (in.op) {
          case ir::Opcode::Br:
            op.target = fc.blockStart[in.target0];
            break;
          case ir::Opcode::CondBr:
            op.target = fc.blockStart[in.target0];
            op.aux = fc.blockStart[in.target1];
            break;
          case ir::Opcode::Call:
            op.aux = in.callee;
            break;
          case ir::Opcode::Load:
          case ir::Opcode::Store:
            op.aux = in.width;
            break;
          case ir::Opcode::Const:
            op.imm = in.imm;
            break;
          case ir::Opcode::FrameAddr:
            op.imm = static_cast<std::uint64_t>(in.offset);
            break;
          case ir::Opcode::Intrinsic:
            op.intrinsic = in.intrinsic;
            break;
          case ir::Opcode::Print:
            op.printKind = in.printKind;
            break;
          default:
            break;
        }
        code->ops.push_back(op);
      }
    }
    code->fns.push_back(std::move(fc));
  }
  return code;
}

}  // namespace

std::uint64_t ThreadedCode::structuralFingerprint(
    const ir::Module& mod) noexcept {
  using util::hashCombine;
  std::uint64_t h = hashCombine(0x7468726561646564ULL, mod.entry);
  h = hashCombine(h, mod.functions.size());
  for (const ir::Function& fn : mod.functions) {
    h = hashCombine(h, (static_cast<std::uint64_t>(fn.numParams) << 32) |
                           fn.numRegs);
    h = hashCombine(h, static_cast<std::uint64_t>(fn.frameBytes));
    h = hashCombine(h, fn.blocks.size());
    for (const ir::BasicBlock& bb : fn.blocks) {
      h = hashCombine(h, bb.instrs.size());
      for (const ir::Instr& in : bb.instrs) h = hashInstr(h, in);
    }
  }
  return h;
}

std::shared_ptr<const ThreadedCode> ThreadedCode::get(const ir::Module& mod) {
  // Address-keyed registry, fingerprint-validated: a module destroyed and
  // another constructed at the same address gets a fresh decode (equal
  // fingerprints would mean the decode is bit-identical anyway). Unsupported
  // modules are cached as null so repeat callers skip the rebuild attempt.
  static std::mutex mu;
  static std::unordered_map<const ir::Module*,
                            std::pair<std::uint64_t,
                                      std::shared_ptr<const ThreadedCode>>>
      registry;
  constexpr std::size_t kMaxEntries = 256;

  const std::uint64_t fp = structuralFingerprint(mod);
  {
    const std::lock_guard<std::mutex> lock(mu);
    auto it = registry.find(&mod);
    if (it != registry.end() && it->second.first == fp) {
      return it->second.second;
    }
  }
  std::shared_ptr<const ThreadedCode> built = build(mod, fp);
  const std::lock_guard<std::mutex> lock(mu);
  auto& slot = registry[&mod];
  if (slot.first != fp || (slot.second == nullptr) != (built == nullptr)) {
    slot = {fp, built};
  }
  if (registry.size() > kMaxEntries) {
    // Generation flush: drop everything but the entry just used. Decoding is
    // cheap relative to the campaigns that reach this size, and a bound on
    // the registry beats an LRU's bookkeeping here.
    auto keep = *registry.find(&mod);
    registry.clear();
    registry.insert(keep);
  }
  return slot.second;
}

}  // namespace onebit::vm
