// Segmented, bounds- and alignment-checked memory for the onebit VM.
//
// Three disjoint segments (globals, stack, heap) live at the fixed virtual
// bases declared in ir/module.hpp with large unmapped gaps between them, so
// that a bit flip in an address register usually lands outside any segment
// and raises a segmentation fault — the dominant detection mechanism in the
// paper's inject-on-read results (§IV-A).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ir/module.hpp"
#include "vm/trap.hpp"

namespace onebit::vm {

class Memory {
 public:
  Memory(const std::vector<std::uint8_t>& globalImage, std::size_t stackBytes,
         std::size_t maxHeapBytes);

  /// Load `width` (1 or 8) bytes, zero-extended into a 64-bit word.
  /// On failure sets `trap` and returns 0.
  std::uint64_t load(std::uint64_t addr, unsigned width,
                     TrapKind& trap) noexcept;

  /// Store the low `width` bytes of value. On failure sets `trap`.
  void store(std::uint64_t addr, unsigned width, std::uint64_t value,
             TrapKind& trap) noexcept;

  /// XOR the low `width` bytes of `mask` into the bytes at addr — the fault
  /// injectors' poke interface for flipping bits of stored data in place
  /// (the MemoryData fault domain). Same addressing rules as store(); on an
  /// unmapped or misaligned target sets `trap` and changes nothing. Updates
  /// the stack store high-water mark exactly like store(), so VM snapshots
  /// always capture poked bytes.
  void poke(std::uint64_t addr, unsigned width, std::uint64_t mask,
            TrapKind& trap) noexcept;

  /// Bump-allocate a zeroed heap block (8-byte aligned). Returns its
  /// address, or 0 with `trap` set when the heap budget is exhausted.
  std::uint64_t alloc(std::int64_t bytes, TrapKind& trap);

  [[nodiscard]] std::size_t stackBytes() const noexcept { return stackSize_; }
  [[nodiscard]] std::size_t heapUsed() const noexcept { return heap_.size(); }

  /// One past the highest stack byte ever written through store(). Stack
  /// content only changes via store(), so every byte at or beyond this
  /// offset is still zero — the exact bound VM snapshots copy up to. (A
  /// frame-pointer high-water mark would not do: stores anywhere inside the
  /// stack segment are legal, including above the current frames.)
  [[nodiscard]] std::size_t stackStoreHighWater() const noexcept {
    return storeHighWater_;
  }

  /// Copy the three segments into a VM snapshot. Only the first `stackUsed`
  /// bytes of the stack are copied — the caller (vm::Machine) tracks the
  /// stack high-water mark, and bytes beyond it are untouched zeros.
  void captureSegments(std::size_t stackUsed,
                       std::vector<std::uint8_t>& globals,
                       std::vector<std::uint8_t>& stack,
                       std::vector<std::uint8_t>& heap) const;

  /// Restore segments captured by captureSegments: globals are replaced,
  /// the stack becomes `stackPrefix` followed by zeros, the heap becomes
  /// `heap`. Throws std::invalid_argument when an image does not fit this
  /// Memory's geometry (globals size mismatch, stack prefix longer than the
  /// stack, heap beyond the heap budget). When content hashing is on, the
  /// hash is recomputed from the restored images.
  void restoreSegments(const std::vector<std::uint8_t>& globals,
                       const std::vector<std::uint8_t>& stackPrefix,
                       const std::vector<std::uint8_t>& heap);

  /// Enable/disable incremental content hashing (see vm/state_hash.hpp).
  /// Turning it on (re)computes the hash from the current segment contents;
  /// from then on store() and poke() maintain it in O(1) per write.
  void trackContentHash(bool on);

  /// Incrementally maintained XOR hash over all non-zero aligned 8-byte
  /// words of the three segments (0 while tracking is off). Words that
  /// straddle a segment end are read zero-extended, so growing the heap
  /// with zero bytes never changes the hash.
  [[nodiscard]] std::uint64_t contentHash() const noexcept { return hash_; }

  /// From-scratch recomputation of contentHash() — the cross-check the
  /// incremental maintenance is tested against.
  [[nodiscard]] std::uint64_t computeContentHash() const noexcept;

 private:
  /// Resolve addr/width to a host pointer, or nullptr with trap set.
  std::uint8_t* resolve(std::uint64_t addr, unsigned width,
                        TrapKind& trap) noexcept;

  /// The aligned 8-byte word at `wordAddr`, zero-extended past a segment
  /// end; 0 when the address is unmapped.
  [[nodiscard]] std::uint64_t wordValueAt(std::uint64_t wordAddr) const noexcept;

  /// XOR the hash delta of the word containing `addr` around a write: call
  /// with the word value before and after.
  void foldWordDelta(std::uint64_t wordAddr, std::uint64_t oldWord,
                     std::uint64_t newWord) noexcept;

  struct CallocDeleter {
    void operator()(std::uint8_t* p) const noexcept;
  };

  std::vector<std::uint8_t> globals_;
  /// The stack segment is calloc-backed rather than a zero-filled vector:
  /// campaigns construct a Memory per experiment, and for the default 1 MiB
  /// stack an eager memset would cost more than a short experiment's whole
  /// execution. calloc hands out lazily-zeroed pages, so only the pages a
  /// program actually touches are ever materialized. The contents contract
  /// is identical: every byte reads as zero until written.
  std::unique_ptr<std::uint8_t[], CallocDeleter> stack_;
  std::size_t stackSize_ = 0;
  std::vector<std::uint8_t> heap_;
  std::size_t maxHeapBytes_;
  std::size_t storeHighWater_ = 0;
  bool hashing_ = false;
  std::uint64_t hash_ = 0;
};

}  // namespace onebit::vm
