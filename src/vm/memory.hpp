// Segmented, bounds- and alignment-checked memory for the onebit VM.
//
// Three disjoint segments (globals, stack, heap) live at the fixed virtual
// bases declared in ir/module.hpp with large unmapped gaps between them, so
// that a bit flip in an address register usually lands outside any segment
// and raises a segmentation fault — the dominant detection mechanism in the
// paper's inject-on-read results (§IV-A).
#pragma once

#include <cstdint>
#include <vector>

#include "ir/module.hpp"
#include "vm/trap.hpp"

namespace onebit::vm {

class Memory {
 public:
  Memory(const std::vector<std::uint8_t>& globalImage, std::size_t stackBytes,
         std::size_t maxHeapBytes);

  /// Load `width` (1 or 8) bytes, zero-extended into a 64-bit word.
  /// On failure sets `trap` and returns 0.
  std::uint64_t load(std::uint64_t addr, unsigned width,
                     TrapKind& trap) noexcept;

  /// Store the low `width` bytes of value. On failure sets `trap`.
  void store(std::uint64_t addr, unsigned width, std::uint64_t value,
             TrapKind& trap) noexcept;

  /// Bump-allocate a zeroed heap block (8-byte aligned). Returns its
  /// address, or 0 with `trap` set when the heap budget is exhausted.
  std::uint64_t alloc(std::int64_t bytes, TrapKind& trap);

  [[nodiscard]] std::size_t stackBytes() const noexcept {
    return stack_.size();
  }
  [[nodiscard]] std::size_t heapUsed() const noexcept { return heap_.size(); }

 private:
  /// Resolve addr/width to a host pointer, or nullptr with trap set.
  std::uint8_t* resolve(std::uint64_t addr, unsigned width,
                        TrapKind& trap) noexcept;

  std::vector<std::uint8_t> globals_;
  std::vector<std::uint8_t> stack_;
  std::vector<std::uint8_t> heap_;
  std::size_t maxHeapBytes_;
};

}  // namespace onebit::vm
