// VM snapshots: between-instructions checkpoints of a Machine execution.
//
// A Snapshot captures everything a resumed run needs to continue
// bit-identically: the call-frame stack, the shared virtual register file,
// all three memory segments (globals, used stack prefix, heap), the stack
// pointer, the partial program output, and the dynamic instruction /
// candidate-stream counters. Because the interpreter is deterministic, a run
// resumed from a snapshot is indistinguishable from a from-scratch run that
// reached the same point — same ExecResult, same hook callback stream, same
// trap behavior — for ANY hook and ANY limits (see tests/snapshot_test.cpp).
//
// The fault-injection layer uses this as a golden-prefix fast-forward:
// every faulty run's prefix before the first injection is identical to the
// golden run, so fi::Workload captures snapshots once during its golden run
// and fi::runExperiment resumes each experiment from the densest snapshot
// at-or-before the fault plan's first injection index instead of
// re-interpreting the whole prefix (see fi/experiment.hpp).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ir/module.hpp"
#include "vm/interpreter.hpp"

namespace onebit::vm {

/// A checkpoint of a Machine between two dynamic instructions. Pure data;
/// only meaningful together with the ir::Module it was captured from.
struct Snapshot {
  /// One call frame. `pendingCall` pointers are not stored: for frame i > 0
  /// the pending call is always the caller's previously fetched instruction,
  /// i.e. frames[i-1].fn's block `block` at index `ip - 1`.
  struct Frame {
    std::uint32_t fn = 0;     ///< index into Module::functions
    std::uint32_t block = 0;  ///< current basic block
    std::uint32_t ip = 0;     ///< next instruction index within the block
    std::uint64_t regBase = 0;
    std::uint64_t frameBase = 0;
  };

  std::vector<Frame> frames;
  std::vector<std::uint64_t> regs;  ///< shared register stack (all frames)
  std::vector<std::uint8_t> globals;
  /// Written stack prefix ([0, stackHighWater)). The bound is the highest
  /// byte ever STORED (Memory::stackStoreHighWater) — not a frame-pointer
  /// mark, since stores anywhere inside the stack segment are legal — so
  /// every byte beyond it is still zero in any reachable state.
  std::vector<std::uint8_t> stack;
  std::vector<std::uint8_t> heap;
  std::uint64_t sp = 0;
  std::uint64_t stackHighWater = 0;  ///< == stack.size()
  std::uint64_t instructions = 0;
  std::uint64_t readCandidates = 0;   ///< inject-on-read stream position
  std::uint64_t writeCandidates = 0;  ///< inject-on-write stream position
  std::uint64_t storeCandidates = 0;  ///< store-event stream position
  bool outputTruncated = false;
  std::string output;  ///< program output produced so far
  /// Machine::stateHash() at the capture point when the capturing run had
  /// ExecLimits::trackStateHash set; 0 otherwise. Not part of the resumed
  /// state — a resumed hashing run recomputes it from the images — but
  /// callers use it to cross-check capture/resume hash invariance.
  std::uint64_t stateHash = 0;

  /// Approximate heap footprint (for snapshot-cache byte budgets).
  [[nodiscard]] std::size_t byteSize() const noexcept;
};

/// Capture cadence and retention bounds for executeWithSnapshots.
struct SnapshotCapturePolicy {
  /// Initial spacing, in combined (read + write) candidate indices, between
  /// captures. Must be >= 1. When a retention bound below is exceeded the
  /// collector drops every other kept snapshot and doubles the spacing, so
  /// coverage stays uniform over the run at whatever density fits.
  std::uint64_t interval = 1024;
  std::size_t maxSnapshots = 64;       ///< 0 = unbounded
  std::size_t budgetBytes = 16 << 20;  ///< total byteSize() cap; 0 = unbounded
};

/// Run `mod` to completion with no hook — the ExecResult is identical to
/// execute(mod, limits, nullptr) — capturing snapshots along the way into
/// `out` (cleared first, ordered by capture time, so both candidate
/// counters are nondecreasing across the vector).
ExecResult executeWithSnapshots(const ir::Module& mod, const ExecLimits& limits,
                                const SnapshotCapturePolicy& policy,
                                std::vector<Snapshot>& out);

/// Build the snapshot sink executeWithSnapshots drives: snapshots are
/// collected into `out` (cleared first) under `policy`'s retention bounds,
/// dropping every other kept snapshot and doubling the cadence whenever a
/// bound is exceeded. Exposed so callers that drive a Machine themselves
/// (e.g. the pruning golden run, which interleaves capture with
/// runToBoundary) collect snapshots with the exact same retention behavior.
/// The returned type is Machine::SnapshotSink. `out` must outlive the sink.
std::function<std::uint64_t(Snapshot&&)> makeRetentionSink(
    const SnapshotCapturePolicy& policy, std::vector<Snapshot>& out);

/// Continue a snapshotted execution of `mod` to completion. The continuation
/// is bit-identical to a from-scratch execute(mod, limits, hook) run from the
/// snapshot point on: the hook sees the same callback stream (with candidate
/// indices continuing from the snapshot's counters), and the returned
/// ExecResult — including the cumulative instruction/candidate counts and the
/// full output — equals the from-scratch result. Throws std::invalid_argument
/// when the snapshot does not fit `mod` or `limits` (wrong module, a stack /
/// heap image exceeding the limits' segment sizes).
ExecResult resume(const ir::Module& mod, const Snapshot& snap,
                  const ExecLimits& limits, ExecHook* hook = nullptr);

}  // namespace onebit::vm
