#include "vm/machine.hpp"

#include <array>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>
#include <utility>

namespace onebit::vm {

using ir::Instr;
using ir::Opcode;

Machine::Machine(const ir::Module& mod, const ExecLimits& limits,
                 ExecHook* hook)
    : mod_(mod),
      limits_(limits),
      hook_(hook),
      mem_(mod.globalData, limits.stackBytes, limits.maxHeapBytes) {
  hashing_ = limits.trackStateHash;
  if (hashing_) mem_.trackContentHash(true);  // global image may be non-zero
  pushFrame(mod_.entry, {}, nullptr);
}

namespace {

[[noreturn]] void badSnapshot(const char* what) {
  throw std::invalid_argument(std::string("vm::resume: snapshot ") + what);
}

}  // namespace

Machine::Machine(const ir::Module& mod, const Snapshot& snap,
                 const ExecLimits& limits, ExecHook* hook)
    : mod_(mod),
      limits_(limits),
      hook_(hook),
      mem_(mod.globalData, limits.stackBytes, limits.maxHeapBytes) {
  if (snap.frames.empty()) badSnapshot("has no call frames");
  if (snap.stackHighWater > limits.stackBytes ||
      snap.sp > limits.stackBytes ||
      snap.stack.size() != snap.stackHighWater) {
    badSnapshot("stack image does not fit the limits");
  }
  // A from-scratch run under these limits must be able to reach the
  // snapshot point, or the resumed continuation would diverge from it.
  if (snap.frames.size() > limits.maxCallDepth ||
      snap.instructions > limits.maxInstructions ||
      snap.output.size() > limits.maxOutputBytes) {
    badSnapshot("state exceeds the limits");
  }
  mem_.restoreSegments(snap.globals, snap.stack, snap.heap);

  frames_.reserve(snap.frames.size());
  std::size_t expectRegBase = 0;
  for (std::size_t i = 0; i < snap.frames.size(); ++i) {
    const Snapshot::Frame& sf = snap.frames[i];
    if (sf.fn >= mod.functions.size()) badSnapshot("references an unknown function");
    const ir::Function& fn = mod.functions[sf.fn];
    if (sf.block >= fn.blocks.size() ||
        sf.ip >= fn.blocks[sf.block].instrs.size()) {
      badSnapshot("references an unknown instruction");
    }
    if (sf.regBase != expectRegBase) badSnapshot("register bases are corrupt");
    expectRegBase += fn.numRegs;
    CallFrame frame;
    frame.fn = &fn;
    frame.block = sf.block;
    frame.ip = sf.ip;
    frame.regBase = static_cast<std::size_t>(sf.regBase);
    frame.frameBase = sf.frameBase;
    if (i > 0) {
      // The pending call is always the caller's previously fetched
      // instruction (pushFrame is only reached from Opcode::Call, which
      // leaves the caller's ip pointing one past the call).
      const CallFrame& caller = frames_.back();
      const auto& callerInstrs = caller.fn->blocks[caller.block].instrs;
      if (caller.ip == 0 || callerInstrs[caller.ip - 1].op != Opcode::Call) {
        badSnapshot("call chain is corrupt");
      }
      frame.pendingCall = &callerInstrs[caller.ip - 1];
    }
    frames_.push_back(frame);
  }
  if (snap.regs.size() != expectRegBase) badSnapshot("register file size is corrupt");

  regs_ = snap.regs;
  sp_ = snap.sp;
  instructions_ = snap.instructions;
  readCandidates_ = snap.readCandidates;
  writeCandidates_ = snap.writeCandidates;
  storeCandidates_ = snap.storeCandidates;
  result_.output = snap.output;
  result_.outputTruncated = snap.outputTruncated;

  // Rebuild the incremental hash components from the restored state. The
  // snapshot's own stateHash field is deliberately ignored: recomputing
  // keeps capture/resume hash invariance a checkable property instead of a
  // stored promise.
  hashing_ = limits.trackStateHash;
  if (hashing_) {
    mem_.trackContentHash(true);
    for (std::size_t i = 0; i < regs_.size(); ++i) {
      if (regs_[i] != 0) regsHash_ ^= statehash::regTerm(i, regs_[i]);
    }
    for (std::size_t i = 0; i + 1 < frames_.size(); ++i) {
      framesHash_ ^= frameTerm(i, frames_[i]);
    }
    for (const char c : result_.output) {
      outputHash_ =
          statehash::fnvByte(outputHash_, static_cast<unsigned char>(c));
    }
  }
}

void Machine::captureEvery(std::uint64_t interval, SnapshotSink sink) {
  captureInterval_ = interval == 0 ? 1 : interval;
  snapshotSink_ = std::move(sink);
  const std::uint64_t combined = readCandidates_ + writeCandidates_;
  nextCaptureAt_ = combined - combined % captureInterval_ + captureInterval_;
}

Snapshot Machine::capture() const {
  Snapshot s;
  s.frames.reserve(frames_.size());
  for (const CallFrame& f : frames_) {
    s.frames.push_back({static_cast<std::uint32_t>(f.fn - mod_.functions.data()),
                        f.block, f.ip, static_cast<std::uint64_t>(f.regBase),
                        f.frameBase});
  }
  s.regs = regs_;
  const std::size_t stackUsed = mem_.stackStoreHighWater();
  mem_.captureSegments(stackUsed, s.globals, s.stack, s.heap);
  s.sp = sp_;
  s.stackHighWater = stackUsed;
  s.instructions = instructions_;
  s.readCandidates = readCandidates_;
  s.writeCandidates = writeCandidates_;
  s.storeCandidates = storeCandidates_;
  s.outputTruncated = result_.outputTruncated;
  s.output = result_.output;
  if (hashing_) s.stateHash = stateHash();
  return s;
}

std::uint64_t Machine::frameTerm(std::uint64_t depth,
                                 const CallFrame& f) const noexcept {
  using statehash::mix64;
  // pendingCall is not folded: it is derivable from the caller's ip, which
  // the caller's own term covers.
  std::uint64_t h = mix64(statehash::kFrameSalt ^ (depth + 1));
  h = mix64(h ^ static_cast<std::uint64_t>(f.fn - mod_.functions.data()));
  h = mix64(h ^ ((static_cast<std::uint64_t>(f.block) << 32) | f.ip));
  h = mix64(h ^ static_cast<std::uint64_t>(f.regBase));
  h = mix64(h ^ f.frameBase);
  return h;
}

std::uint64_t Machine::stateHash() const {
  using statehash::mix64;
  // The top frame mutates every instruction, so it is hashed on demand here
  // rather than maintained incrementally; parked frames are immutable while
  // parked and live in framesHash_ (updated on call/ret, i.e. on every
  // control transfer between frames).
  std::uint64_t frames = framesHash_;
  if (!frames_.empty()) {
    frames ^= frameTerm(frames_.size() - 1, frames_.back());
  }
  std::uint64_t h = statehash::kStateSalt;
  h = mix64(h ^ regsHash_);
  h = mix64(h ^ mem_.contentHash());
  h = mix64(h ^ frames);
  h = mix64(h ^ outputHash_);
  h = mix64(h ^ static_cast<std::uint64_t>(result_.outputTruncated));
  h = mix64(h ^ sp_);
  // The counters pin the hash to one exact point of one exact execution:
  // equal hashes then mean equal full machine state at the same dynamic
  // time, so the (deterministic, hook-free) continuations are equal too.
  h = mix64(h ^ instructions_);
  h = mix64(h ^ readCandidates_);
  h = mix64(h ^ writeCandidates_);
  h = mix64(h ^ storeCandidates_);
  return h;
}

std::uint64_t Machine::computeStateHash() const {
  using statehash::mix64;
  std::uint64_t regs = 0;
  for (std::size_t i = 0; i < regs_.size(); ++i) {
    if (regs_[i] != 0) regs ^= statehash::regTerm(i, regs_[i]);
  }
  std::uint64_t frames = 0;
  for (std::size_t i = 0; i < frames_.size(); ++i) {
    frames ^= frameTerm(i, frames_[i]);
  }
  std::uint64_t output = statehash::kFnvBasis;
  for (const char c : result_.output) {
    output = statehash::fnvByte(output, static_cast<unsigned char>(c));
  }
  std::uint64_t h = statehash::kStateSalt;
  h = mix64(h ^ regs);
  h = mix64(h ^ mem_.computeContentHash());
  h = mix64(h ^ frames);
  h = mix64(h ^ output);
  h = mix64(h ^ static_cast<std::uint64_t>(result_.outputTruncated));
  h = mix64(h ^ sp_);
  h = mix64(h ^ instructions_);
  h = mix64(h ^ readCandidates_);
  h = mix64(h ^ writeCandidates_);
  h = mix64(h ^ storeCandidates_);
  return h;
}

void Machine::stopStateHashTracking() noexcept {
  hashing_ = false;
  mem_.trackContentHash(false);
}

void Machine::maybeCapture() {
  const std::uint64_t newInterval = snapshotSink_(capture());
  if (newInterval != 0) captureInterval_ = newInterval;
  const std::uint64_t combined = readCandidates_ + writeCandidates_;
  nextCaptureAt_ = combined - combined % captureInterval_ + captureInterval_;
}

ExecResult Machine::finish() {
  result_.instructions = instructions_;
  result_.readCandidates = readCandidates_;
  result_.writeCandidates = writeCandidates_;
  result_.storeCandidates = storeCandidates_;
  ExecResult out = std::move(result_);
  // Leave the machine's residual state deterministic (the moved-from output
  // is defined-empty, the flags are restored) so a post-run
  // computeStateHash() is well-defined — the differential backend fuzzer
  // compares it across dispatch backends.
  result_ = ExecResult{};
  result_.status = out.status;
  result_.trap = out.trap;
  result_.outputTruncated = out.outputTruncated;
  return out;
}

void Machine::trap(TrapKind k) {
  result_.status = ExecStatus::Trapped;
  result_.trap = k;
}

void Machine::pushFrame(std::uint32_t fnId, std::span<const std::uint64_t> args,
                        const Instr* pendingCall) {
  const ir::Function& fn = mod_.functions[fnId];
  if (frames_.size() >= limits_.maxCallDepth) {
    trap(TrapKind::SegFault);  // runaway recursion = stack overflow
    return;
  }
  const std::uint64_t alignedFrame =
      (static_cast<std::uint64_t>(fn.frameBytes) + 7U) & ~7ULL;
  if (sp_ + alignedFrame > mem_.stackBytes()) {
    trap(TrapKind::SegFault);
    return;
  }
  CallFrame frame;
  frame.fn = &fn;
  frame.regBase = regs_.size();
  frame.frameBase = ir::kStackBase + sp_;
  frame.pendingCall = pendingCall;
  sp_ += alignedFrame;
  regs_.resize(regs_.size() + fn.numRegs, 0);
  for (std::size_t i = 0; i < args.size() && i < fn.numParams; ++i) {
    regs_[frame.regBase + i] = args[i];
  }
  frames_.push_back(frame);
  if (hashing_) {
    // The caller just became a parked frame (its fields are frozen until
    // this call returns); the callee's fresh registers are zero except the
    // copied arguments.
    if (frames_.size() > 1) {
      framesHash_ ^=
          frameTerm(frames_.size() - 2, frames_[frames_.size() - 2]);
    }
    for (std::size_t i = 0; i < args.size() && i < fn.numParams; ++i) {
      if (args[i] != 0) {
        regsHash_ ^= statehash::regTerm(frame.regBase + i, args[i]);
      }
    }
  }
}

void Machine::popFrame() {
  const CallFrame& frame = frames_.back();
  const std::uint64_t alignedFrame =
      (static_cast<std::uint64_t>(frame.fn->frameBytes) + 7U) & ~7ULL;
  sp_ -= alignedFrame;
  if (hashing_) {
    // The popped frame's registers vanish; the caller un-parks (its term
    // still matches the one folded at call time — parked frames are
    // immutable).
    for (std::size_t i = frame.regBase; i < regs_.size(); ++i) {
      if (regs_[i] != 0) regsHash_ ^= statehash::regTerm(i, regs_[i]);
    }
    if (frames_.size() > 1) {
      framesHash_ ^=
          frameTerm(frames_.size() - 2, frames_[frames_.size() - 2]);
    }
  }
  regs_.resize(frame.regBase);
  frames_.pop_back();
}

void Machine::appendOutput(const char* data, std::size_t n) {
  if (result_.output.size() + n > limits_.maxOutputBytes) {
    result_.outputTruncated = true;
    return;
  }
  result_.output.append(data, n);
  if (hashing_) {
    for (std::size_t i = 0; i < n; ++i) {
      outputHash_ =
          statehash::fnvByte(outputHash_, static_cast<unsigned char>(data[i]));
    }
  }
}

void Machine::printValue(ir::PrintKind kind, std::uint64_t v) {
  char buf[64];
  switch (kind) {
    case ir::PrintKind::I64: {
      const int n = std::snprintf(buf, sizeof buf, "%lld",
                                  static_cast<long long>(ir::asI64(v)));
      appendOutput(buf, static_cast<std::size_t>(n));
      break;
    }
    case ir::PrintKind::F64: {
      double d = ir::asF64(v);
      // Normalize non-finite and negative-zero values so the golden
      // comparison is well defined across platforms.
      if (std::isnan(d)) {
        appendOutput("nan", 3);
        break;
      }
      if (std::isinf(d)) {
        if (d < 0) appendOutput("-inf", 4);
        else appendOutput("inf", 3);
        break;
      }
      if (d == 0.0) d = 0.0;  // collapse -0.0 into +0.0
      const int n = std::snprintf(buf, sizeof buf, "%.6f", d);
      appendOutput(buf, static_cast<std::size_t>(n));
      break;
    }
    case ir::PrintKind::Char: {
      buf[0] = static_cast<char>(v & 0xff);
      appendOutput(buf, 1);
      break;
    }
  }
}

namespace detail {

std::int64_t saturatingFpToSi(double d) noexcept {
  if (std::isnan(d)) return 0;
  if (d >= 9.2233720368547758e18) return std::numeric_limits<std::int64_t>::max();
  if (d <= -9.2233720368547758e18) return std::numeric_limits<std::int64_t>::min();
  return static_cast<std::int64_t>(d);
}

}  // namespace detail

std::uint64_t Machine::applyIntrinsic(ir::IntrinsicKind kind,
                                      std::span<const std::uint64_t> v) {
  const double a = ir::asF64(v[0]);
  const double b = v.size() > 1 ? ir::asF64(v[1]) : 0.0;
  double r = 0.0;
  switch (kind) {
    case ir::IntrinsicKind::Sqrt: r = std::sqrt(a); break;
    case ir::IntrinsicKind::Sin: r = std::sin(a); break;
    case ir::IntrinsicKind::Cos: r = std::cos(a); break;
    case ir::IntrinsicKind::Tan: r = std::tan(a); break;
    case ir::IntrinsicKind::Atan: r = std::atan(a); break;
    case ir::IntrinsicKind::Exp: r = std::exp(a); break;
    case ir::IntrinsicKind::Log: r = std::log(a); break;
    case ir::IntrinsicKind::Fabs: r = std::fabs(a); break;
    case ir::IntrinsicKind::Floor: r = std::floor(a); break;
    case ir::IntrinsicKind::Ceil: r = std::ceil(a); break;
    case ir::IntrinsicKind::Pow: r = std::pow(a, b); break;
    case ir::IntrinsicKind::Atan2: r = std::atan2(a, b); break;
  }
  return ir::fromF64(r);
}

template <bool Hooked>
void Machine::dispatchLoop(bool capturing) {
  if (hashing_) {
    if (capturing) loop<Hooked, true, true>();
    else loop<Hooked, false, true>();
  } else {
    if (capturing) loop<Hooked, true, false>();
    else loop<Hooked, false, false>();
  }
}

ExecResult Machine::run() {
  if (result_.status == ExecStatus::Ok && !halted_) {
    const bool capturing = captureInterval_ != 0;
    if (hook_ != nullptr && !hook_->exhausted()) {
      dispatchLoop<true>(capturing);
    }
    // Hook-free fast path: golden runs, and the tail of a faulty run once
    // the hook can no longer mutate anything (no virtual dispatch at all).
    // Only this segment is eligible for the threaded backend: hooked,
    // capturing, and hashing segments need the per-instruction callbacks /
    // boundary checks only the reference loop carries.
    if (result_.status == ExecStatus::Ok && !halted_) {
      if (limits_.dispatch == DispatchBackend::Threaded && !capturing &&
          !hashing_) {
        runThreaded();
      } else {
        dispatchLoop<false>(capturing);
      }
    }
  }
  return finish();
}

void Machine::runThreaded() {
  if (threaded_ == nullptr) {
    // Prefer a caller-precompiled stream (fi::Workload passes one so the
    // thousands of short runs a campaign makes skip the per-run registry
    // fingerprint validation); fall back to the validating registry.
    threaded_ = limits_.threadedCode != nullptr ? limits_.threadedCode
                                                : ThreadedCode::get(mod_);
  }
  if (threaded_ == nullptr) {
    dispatchLoop<false>(false);  // decoder rejected the module shape
    return;
  }
  detail::runThreadedLoop(this, threaded_.get(), nullptr);
}

bool Machine::runToBoundary(std::uint64_t grid) {
  if (!hashing_ || grid == 0) return false;
  if (result_.status != ExecStatus::Ok || halted_) return false;
  const bool capturing = captureInterval_ != 0;
  if (hook_ != nullptr && !hook_->exhausted()) {
    // No pausing while injections are pending: the hook's internal state is
    // part of the dynamic system but not of the hash, so hash comparisons
    // are only sound once it is exhausted. (pauseAt_ is still ~0 here.)
    dispatchLoop<true>(capturing);
    if (result_.status != ExecStatus::Ok || halted_) return false;
    if (!hook_->exhausted()) return false;  // never-exhausting hook: done
  }
  // Strictly-next multiple: a machine paused exactly on a multiple advances
  // to the following one instead of pausing forever.
  pauseAt_ = (instructions_ / grid + 1) * grid;
  dispatchLoop<false>(capturing);
  const bool paused =
      result_.status == ExecStatus::Ok && !halted_ && instructions_ >= pauseAt_;
  pauseAt_ = ~0ULL;
  return paused;
}

template <bool Hooked, bool Capturing, bool Hashing>
void Machine::loop() {
  while (result_.status == ExecStatus::Ok) {
    if constexpr (Hooked) {
      if (hook_->exhausted()) return;  // caller re-enters the unhooked loop
    }
    if constexpr (Hashing) {
      if (instructions_ >= pauseAt_) return;  // runToBoundary pause point
    }
    if constexpr (Capturing) {
      if (readCandidates_ + writeCandidates_ >= nextCaptureAt_) maybeCapture();
    }
    CallFrame& frame = frames_.back();
    const ir::BasicBlock& bb = frame.fn->blocks[frame.block];
    const Instr& in = bb.instrs[frame.ip++];

    if (++instructions_ > limits_.maxInstructions) {
      result_.status = ExecStatus::FuelExhausted;
      return;
    }

    // Gather operand values; give the read hook a chance to corrupt them.
    std::array<std::uint64_t, 8> vals{};
    std::array<bool, 8> isReg{};
    const std::size_t nops = in.operands.size();
    bool anyReg = false;
    for (std::size_t i = 0; i < nops; ++i) {
      const ir::Operand& op = in.operands[i];
      if (op.isReg()) {
        vals[i] = regs_[frame.regBase + op.reg];
        isReg[i] = true;
        anyReg = true;
      } else {
        vals[i] = op.imm;
      }
    }
    if (anyReg) {
      const std::uint64_t readIdx = readCandidates_++;
      if constexpr (Hooked) {
        hook_->onRead(readIdx, instructions_, in, std::span(vals.data(), nops),
                      std::span(isReg.data(), nops));
      }
    }

    std::uint64_t destValue = 0;
    bool writeDest = false;
    TrapKind t = TrapKind::None;

    switch (in.op) {
      case Opcode::Add:
        destValue = vals[0] + vals[1];
        writeDest = true;
        break;
      case Opcode::Sub:
        destValue = vals[0] - vals[1];
        writeDest = true;
        break;
      case Opcode::Mul:
        destValue = vals[0] * vals[1];
        writeDest = true;
        break;
      case Opcode::SDiv: {
        const auto num = ir::asI64(vals[0]);
        const auto den = ir::asI64(vals[1]);
        if (den == 0) {
          trap(TrapKind::DivByZero);
          return;
        }
        if (den == -1 && num == std::numeric_limits<std::int64_t>::min()) {
          destValue = vals[0];  // wraps, like x86 would fault; define it
        } else {
          destValue = ir::fromI64(num / den);
        }
        writeDest = true;
        break;
      }
      case Opcode::SRem: {
        const auto num = ir::asI64(vals[0]);
        const auto den = ir::asI64(vals[1]);
        if (den == 0) {
          trap(TrapKind::DivByZero);
          return;
        }
        if (den == -1) {
          destValue = 0;
        } else {
          destValue = ir::fromI64(num % den);
        }
        writeDest = true;
        break;
      }
      case Opcode::And: destValue = vals[0] & vals[1]; writeDest = true; break;
      case Opcode::Or: destValue = vals[0] | vals[1]; writeDest = true; break;
      case Opcode::Xor: destValue = vals[0] ^ vals[1]; writeDest = true; break;
      case Opcode::Shl:
        destValue = vals[0] << (vals[1] & 63U);
        writeDest = true;
        break;
      case Opcode::LShr:
        destValue = vals[0] >> (vals[1] & 63U);
        writeDest = true;
        break;
      case Opcode::AShr:
        destValue =
            ir::fromI64(ir::asI64(vals[0]) >> (vals[1] & 63U));
        writeDest = true;
        break;
      case Opcode::FAdd:
        destValue = ir::fromF64(ir::asF64(vals[0]) + ir::asF64(vals[1]));
        writeDest = true;
        break;
      case Opcode::FSub:
        destValue = ir::fromF64(ir::asF64(vals[0]) - ir::asF64(vals[1]));
        writeDest = true;
        break;
      case Opcode::FMul:
        destValue = ir::fromF64(ir::asF64(vals[0]) * ir::asF64(vals[1]));
        writeDest = true;
        break;
      case Opcode::FDiv:
        destValue = ir::fromF64(ir::asF64(vals[0]) / ir::asF64(vals[1]));
        writeDest = true;
        break;
      case Opcode::ICmpEq:
        destValue = vals[0] == vals[1] ? 1 : 0;
        writeDest = true;
        break;
      case Opcode::ICmpNe:
        destValue = vals[0] != vals[1] ? 1 : 0;
        writeDest = true;
        break;
      case Opcode::ICmpLt:
        destValue = ir::asI64(vals[0]) < ir::asI64(vals[1]) ? 1 : 0;
        writeDest = true;
        break;
      case Opcode::ICmpLe:
        destValue = ir::asI64(vals[0]) <= ir::asI64(vals[1]) ? 1 : 0;
        writeDest = true;
        break;
      case Opcode::ICmpGt:
        destValue = ir::asI64(vals[0]) > ir::asI64(vals[1]) ? 1 : 0;
        writeDest = true;
        break;
      case Opcode::ICmpGe:
        destValue = ir::asI64(vals[0]) >= ir::asI64(vals[1]) ? 1 : 0;
        writeDest = true;
        break;
      case Opcode::FCmpEq:
        destValue = ir::asF64(vals[0]) == ir::asF64(vals[1]) ? 1 : 0;
        writeDest = true;
        break;
      case Opcode::FCmpNe:
        destValue = ir::asF64(vals[0]) != ir::asF64(vals[1]) ? 1 : 0;
        writeDest = true;
        break;
      case Opcode::FCmpLt:
        destValue = ir::asF64(vals[0]) < ir::asF64(vals[1]) ? 1 : 0;
        writeDest = true;
        break;
      case Opcode::FCmpLe:
        destValue = ir::asF64(vals[0]) <= ir::asF64(vals[1]) ? 1 : 0;
        writeDest = true;
        break;
      case Opcode::FCmpGt:
        destValue = ir::asF64(vals[0]) > ir::asF64(vals[1]) ? 1 : 0;
        writeDest = true;
        break;
      case Opcode::FCmpGe:
        destValue = ir::asF64(vals[0]) >= ir::asF64(vals[1]) ? 1 : 0;
        writeDest = true;
        break;
      case Opcode::SIToFP:
        destValue = ir::fromF64(static_cast<double>(ir::asI64(vals[0])));
        writeDest = true;
        break;
      case Opcode::FPToSI:
        destValue = ir::fromI64(detail::saturatingFpToSi(ir::asF64(vals[0])));
        writeDest = true;
        break;
      case Opcode::Load:
        destValue = mem_.load(vals[0], in.width, t);
        if (t != TrapKind::None) {
          trap(t);
          return;
        }
        writeDest = true;
        break;
      case Opcode::Store: {
        mem_.store(vals[0], in.width, vals[1], t);
        if (t != TrapKind::None) {
          trap(t);
          return;
        }
        // Only committed stores are MemoryData candidates: a trapped store
        // wrote nothing, so there are no stored bytes to corrupt.
        const std::uint64_t storeIdx = storeCandidates_++;
        if constexpr (Hooked) {
          hook_->onStore(storeIdx, instructions_, in, vals[0], mem_);
        }
        break;
      }
      case Opcode::FrameAddr:
        destValue = frame.frameBase + static_cast<std::uint64_t>(in.offset);
        writeDest = true;
        break;
      case Opcode::Br:
        frame.block = in.target0;
        frame.ip = 0;
        continue;
      case Opcode::CondBr:
        frame.block = vals[0] != 0 ? in.target0 : in.target1;
        frame.ip = 0;
        continue;
      case Opcode::Call: {
        pushFrame(in.callee, std::span(vals.data(), nops), &in);
        continue;
      }
      case Opcode::Ret: {
        const std::uint64_t retVal = nops > 0 ? vals[0] : 0;
        const Instr* call = frame.pendingCall;
        popFrame();
        if (frames_.empty()) {
          result_.returnValue = ir::asI64(retVal);
          halted_ = true;
          return;  // main returned
        }
        if (call != nullptr && call->dest != ir::kNoReg) {
          std::uint64_t v = retVal;
          const std::uint64_t writeIdx = writeCandidates_++;
          if constexpr (Hooked) {
            hook_->onWrite(writeIdx, instructions_, *call, v);
          }
          const std::size_t idx = frames_.back().regBase + call->dest;
          if constexpr (Hashing) {
            const std::uint64_t old = regs_[idx];
            if (old != v) {
              if (old != 0) regsHash_ ^= statehash::regTerm(idx, old);
              if (v != 0) regsHash_ ^= statehash::regTerm(idx, v);
            }
          }
          regs_[idx] = v;
        }
        continue;
      }
      case Opcode::Const:
        destValue = in.imm;
        writeDest = true;
        break;
      case Opcode::Move:
        destValue = vals[0];
        writeDest = true;
        break;
      case Opcode::Intrinsic:
        destValue = applyIntrinsic(in.intrinsic, std::span(vals.data(), nops));
        writeDest = true;
        break;
      case Opcode::Print:
        printValue(in.printKind, vals[0]);
        break;
      case Opcode::Alloc: {
        destValue = mem_.alloc(ir::asI64(vals[0]), t);
        if (t != TrapKind::None) {
          trap(t);
          return;
        }
        writeDest = true;
        break;
      }
      case Opcode::Abort:
        trap(TrapKind::Abort);
        return;
    }

    if (writeDest && in.dest != ir::kNoReg) {
      // Const/FrameAddr materialize immediates; LLVM has no such
      // instructions (constants are operands there), so they are not
      // inject-on-write candidates.
      if (in.op != Opcode::Const && in.op != Opcode::FrameAddr) {
        const std::uint64_t writeIdx = writeCandidates_++;
        if constexpr (Hooked) {
          hook_->onWrite(writeIdx, instructions_, in, destValue);
        }
      }
      const std::size_t idx = frame.regBase + in.dest;
      if constexpr (Hashing) {
        const std::uint64_t old = regs_[idx];
        if (old != destValue) {
          if (old != 0) regsHash_ ^= statehash::regTerm(idx, old);
          if (destValue != 0) regsHash_ ^= statehash::regTerm(idx, destValue);
        }
      }
      regs_[idx] = destValue;
    }
  }
}

}  // namespace onebit::vm
