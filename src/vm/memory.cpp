#include "vm/memory.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <new>
#include <stdexcept>

#include "vm/state_hash.hpp"

namespace onebit::vm {

using ir::kGlobalBase;
using ir::kHeapBase;
using ir::kStackBase;

void Memory::CallocDeleter::operator()(std::uint8_t* p) const noexcept {
  std::free(p);
}

Memory::Memory(const std::vector<std::uint8_t>& globalImage,
               std::size_t stackBytes, std::size_t maxHeapBytes)
    : globals_(globalImage),
      stack_(static_cast<std::uint8_t*>(
          std::calloc(stackBytes != 0 ? stackBytes : 1, 1))),
      stackSize_(stackBytes),
      maxHeapBytes_(maxHeapBytes) {
  if (stack_ == nullptr) throw std::bad_alloc();
  heap_.reserve(4096);
}

std::uint8_t* Memory::resolve(std::uint64_t addr, unsigned width,
                              TrapKind& trap) noexcept {
  if (width == 8 && (addr & 7U) != 0) {
    trap = TrapKind::Misaligned;
    return nullptr;
  }
  auto inSegment = [&](std::uint64_t base, std::uint8_t* data,
                       std::size_t size) -> std::uint8_t* {
    if (addr >= base && addr - base + width <= size) {
      return data + (addr - base);
    }
    return nullptr;
  };
  // Order by expected access frequency: stack, globals, heap.
  if (auto* p = inSegment(kStackBase, stack_.get(), stackSize_)) return p;
  if (auto* p = inSegment(kGlobalBase, globals_.data(), globals_.size())) {
    return p;
  }
  if (auto* p = inSegment(kHeapBase, heap_.data(), heap_.size())) return p;
  trap = TrapKind::SegFault;
  return nullptr;
}

std::uint64_t Memory::load(std::uint64_t addr, unsigned width,
                           TrapKind& trap) noexcept {
  const std::uint8_t* p = resolve(addr, width, trap);
  if (p == nullptr) return 0;
  if (width == 8) {
    std::uint64_t v;
    std::memcpy(&v, p, 8);
    return v;
  }
  return *p;
}

void Memory::store(std::uint64_t addr, unsigned width, std::uint64_t value,
                   TrapKind& trap) noexcept {
  std::uint8_t* p = resolve(addr, width, trap);
  if (p == nullptr) return;
  const std::uint64_t stackOff = addr - kStackBase;  // wraps below kStackBase
  if (stackOff < stackSize_) {
    storeHighWater_ =
        std::max(storeHighWater_, static_cast<std::size_t>(stackOff) + width);
  }
  // Segment bases are 8-aligned, so the containing word never crosses a
  // segment boundary; a width-1 store only ever changes its one word.
  const std::uint64_t wordAddr = addr & ~7ULL;
  const std::uint64_t oldWord = hashing_ ? wordValueAt(wordAddr) : 0;
  if (width == 8) {
    std::memcpy(p, &value, 8);
  } else {
    *p = static_cast<std::uint8_t>(value);
  }
  if (hashing_) foldWordDelta(wordAddr, oldWord, wordValueAt(wordAddr));
}

void Memory::poke(std::uint64_t addr, unsigned width, std::uint64_t mask,
                  TrapKind& trap) noexcept {
  std::uint8_t* p = resolve(addr, width, trap);
  if (p == nullptr) return;
  const std::uint64_t stackOff = addr - kStackBase;  // wraps below kStackBase
  if (stackOff < stackSize_) {
    storeHighWater_ =
        std::max(storeHighWater_, static_cast<std::size_t>(stackOff) + width);
  }
  const std::uint64_t wordAddr = addr & ~7ULL;
  const std::uint64_t oldWord = hashing_ ? wordValueAt(wordAddr) : 0;
  if (width == 8) {
    std::uint64_t v;
    std::memcpy(&v, p, 8);
    v ^= mask;
    std::memcpy(p, &v, 8);
  } else {
    *p ^= static_cast<std::uint8_t>(mask);
  }
  if (hashing_) foldWordDelta(wordAddr, oldWord, wordValueAt(wordAddr));
}

void Memory::captureSegments(std::size_t stackUsed,
                             std::vector<std::uint8_t>& globals,
                             std::vector<std::uint8_t>& stack,
                             std::vector<std::uint8_t>& heap) const {
  globals = globals_;
  stackUsed = std::min(stackUsed, stackSize_);
  stack.assign(stack_.get(), stack_.get() + stackUsed);
  heap = heap_;
}

void Memory::restoreSegments(const std::vector<std::uint8_t>& globals,
                             const std::vector<std::uint8_t>& stackPrefix,
                             const std::vector<std::uint8_t>& heap) {
  if (globals.size() != globals_.size() || stackPrefix.size() > stackSize_ ||
      heap.size() > maxHeapBytes_) {
    throw std::invalid_argument(
        "vm::Memory: snapshot segments do not fit this memory geometry");
  }
  globals_ = globals;
  std::copy(stackPrefix.begin(), stackPrefix.end(), stack_.get());
  // Every byte at or beyond storeHighWater_ is still zero (the class
  // invariant), so only the slice the old content could have dirtied needs
  // re-zeroing — not the whole stack. Campaigns resume thousands of
  // snapshots per second; a full-stack fill here would dominate their
  // backend-independent cost.
  if (storeHighWater_ > stackPrefix.size()) {
    std::fill(stack_.get() + stackPrefix.size(),
              stack_.get() + storeHighWater_, 0);
  }
  storeHighWater_ = stackPrefix.size();
  heap_ = heap;
  if (hashing_) hash_ = computeContentHash();
}

void Memory::trackContentHash(bool on) {
  hashing_ = on;
  hash_ = on ? computeContentHash() : 0;
}

std::uint64_t Memory::wordValueAt(std::uint64_t wordAddr) const noexcept {
  const std::uint8_t* seg = nullptr;
  std::size_t segSize = 0;
  std::uint64_t base = 0;
  if (wordAddr >= kStackBase && wordAddr - kStackBase < stackSize_) {
    seg = stack_.get();
    segSize = stackSize_;
    base = kStackBase;
  } else if (wordAddr >= kGlobalBase &&
             wordAddr - kGlobalBase < globals_.size()) {
    seg = globals_.data();
    segSize = globals_.size();
    base = kGlobalBase;
  } else if (wordAddr >= kHeapBase && wordAddr - kHeapBase < heap_.size()) {
    seg = heap_.data();
    segSize = heap_.size();
    base = kHeapBase;
  } else {
    return 0;
  }
  const std::size_t off = static_cast<std::size_t>(wordAddr - base);
  const std::size_t n = std::min<std::size_t>(8, segSize - off);
  std::uint64_t w = 0;
  std::memcpy(&w, seg + off, n);
  return w;
}

void Memory::foldWordDelta(std::uint64_t wordAddr, std::uint64_t oldWord,
                           std::uint64_t newWord) noexcept {
  if (oldWord == newWord) return;
  if (oldWord != 0) hash_ ^= statehash::memTerm(wordAddr, oldWord);
  if (newWord != 0) hash_ ^= statehash::memTerm(wordAddr, newWord);
}

std::uint64_t Memory::computeContentHash() const noexcept {
  std::uint64_t h = 0;
  const auto fold = [&](const std::uint8_t* seg, std::size_t segSize,
                        std::uint64_t base, std::size_t limit) {
    for (std::size_t off = 0; off < limit; off += 8) {
      const std::size_t n = std::min<std::size_t>(8, segSize - off);
      std::uint64_t w = 0;
      std::memcpy(&w, seg + off, n);
      if (w != 0) h ^= statehash::memTerm(base + off, w);
    }
  };
  fold(globals_.data(), globals_.size(), kGlobalBase, globals_.size());
  // Bytes at or beyond the store high-water mark are untouched zeros, so
  // words there contribute nothing — skip them.
  fold(stack_.get(), stackSize_, kStackBase, storeHighWater_);
  fold(heap_.data(), heap_.size(), kHeapBase, heap_.size());
  return h;
}

std::uint64_t Memory::alloc(std::int64_t bytes, TrapKind& trap) {
  if (bytes < 0 ||
      heap_.size() + static_cast<std::uint64_t>(bytes) > maxHeapBytes_) {
    trap = TrapKind::SegFault;
    return 0;
  }
  while (heap_.size() % 8 != 0) heap_.push_back(0);
  const std::uint64_t addr = kHeapBase + heap_.size();
  heap_.insert(heap_.end(), static_cast<std::size_t>(bytes), 0);
  return addr;
}

}  // namespace onebit::vm
