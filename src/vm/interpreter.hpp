// The onebit IR interpreter.
//
// Plays the role native execution plays for LLFI: it runs a module to
// completion while exposing the hook points the fault models need —
//   * inject-on-read:  a dynamic instruction is about to consume its source
//     register operands (ExecHook::onRead),
//   * inject-on-write: a dynamic instruction has produced its destination
//     register value (ExecHook::onWrite), and
//   * store events:    a dynamic Store instruction has just written memory
//     (ExecHook::onStore) — the candidate stream of the MemoryData fault
//     domain, which flips bits of the freshly stored bytes in place.
// The interpreter also counts all three candidate streams so that fault
// plans can address injection points by candidate index, exactly like LLFI
// addresses (time, location) pairs over a fault-free profiling run.
//
// This header is the stable execution surface (hook interface, limits,
// results, execute()). The resumable execution engine itself lives in
// vm/machine.hpp, and vm/snapshot.hpp adds mid-run checkpoints: capture
// snapshots during a run and resume() them bit-identically later — the
// golden-prefix fast-forward the fault-injection layer is built on.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "ir/module.hpp"
#include "vm/memory.hpp"
#include "vm/trap.hpp"

namespace onebit::vm {

class ThreadedCode;

/// Observer/mutator interface for fault injection.
///
/// A hook that can no longer mutate (or wants to observe) any future
/// candidate should call markExhausted(): the interpreter then stops
/// dispatching to it entirely and finishes the run on the same
/// virtual-call-free fast path golden runs use. Exhaustion is a promise
/// about the future, not a request — callbacks already in flight for the
/// current instruction are still delivered.
class ExecHook {
 public:
  virtual ~ExecHook() = default;

  /// Called before executing a dynamic instruction that reads at least one
  /// register operand. `readIndex` counts such instructions (the
  /// inject-on-read candidate stream); `instrIndex` is the global dynamic
  /// instruction counter (used for win-size distances). `values` holds the
  /// operand values about to be used; `isReg[i]` tells whether operand i came
  /// from a register (only those are legal injection targets). The hook may
  /// mutate `values` in place.
  virtual void onRead(std::uint64_t readIndex, std::uint64_t instrIndex,
                      const ir::Instr& instr,
                      std::span<std::uint64_t> values,
                      std::span<const bool> isReg) = 0;

  /// Called after a dynamic instruction computed its destination-register
  /// value, before the register is written. `writeIndex` counts the
  /// inject-on-write candidate stream. The hook may mutate `value`.
  virtual void onWrite(std::uint64_t writeIndex, std::uint64_t instrIndex,
                       const ir::Instr& instr, std::uint64_t& value) = 0;

  /// Called after a dynamic Store instruction successfully wrote
  /// `instr.width` bytes at `addr`. `storeIndex` counts the store-event
  /// candidate stream (the MemoryData fault domain). The hook may corrupt
  /// the stored bytes in place through Memory::poke. Default: no-op, so
  /// register-domain hooks need not care about the memory stream.
  virtual void onStore(std::uint64_t storeIndex, std::uint64_t instrIndex,
                       const ir::Instr& instr, std::uint64_t addr,
                       Memory& mem) {
    (void)storeIndex; (void)instrIndex; (void)instr; (void)addr; (void)mem;
  }

  /// True once the hook has promised to never mutate another candidate.
  /// Deliberately non-virtual: the interpreter polls it once per dynamic
  /// instruction while the hook is attached.
  [[nodiscard]] bool exhausted() const noexcept { return exhausted_; }

 protected:
  /// Irreversibly mark this hook as done; the interpreter detaches it and
  /// continues on the hook-free fast path.
  void markExhausted() noexcept { exhausted_ = true; }

 private:
  bool exhausted_ = false;
};

enum class ExecStatus : unsigned char {
  Ok,             ///< program returned from main normally
  Trapped,        ///< a hardware-exception-like trap fired (see trap)
  FuelExhausted,  ///< instruction budget exceeded (classified as Hang)
};

/// Which execution loop runs the hook-free, non-capturing, non-hashing part
/// of a run (golden executions and the post-exhaustion suffix of faulty
/// runs). `Switch` is the templated reference interpreter in vm/machine.cpp;
/// `Threaded` pre-decodes the module into a dense direct-threaded stream
/// (computed-goto label pointers where the compiler supports them, a decoded
/// switch otherwise — see vm/threaded.hpp) and runs that. The two are
/// bit-identical for every program — pinned by the differential backend
/// fuzzer (tests/dispatch_differential_test.cpp) — so the choice is a pure
/// speedup. Hooked, capturing, and hashing segments always run on the
/// reference loop regardless of this setting.
enum class DispatchBackend : unsigned char {
  Switch,    ///< templated switch interpreter (the reference semantics)
  Threaded,  ///< pre-decoded direct-threaded stream (fast path)
};

struct ExecLimits {
  std::uint64_t maxInstructions = 1'000'000'000ULL;
  std::uint32_t maxCallDepth = 512;
  std::size_t stackBytes = 1 << 20;
  std::size_t maxHeapBytes = 32 << 20;
  std::size_t maxOutputBytes = 4 << 20;
  /// Maintain the incremental 64-bit state hash (vm/state_hash.hpp) while
  /// running, exposing Machine::stateHash() / Snapshot::stateHash and
  /// enabling Machine::runToBoundary(). Off by default: hashing never
  /// changes execution semantics, but the per-write folds are not free, so
  /// only the outcome-equivalence pruning layer (fi::OutcomeCache) turns it
  /// on. Deliberately NOT part of any workload fingerprint — like snapshot
  /// cadence, it must never affect results.
  bool trackStateHash = false;
  /// Backend for the hook-free fast path. Like trackStateHash, a pure
  /// performance choice that never affects results and is NOT part of any
  /// workload fingerprint. Default is the reference loop; campaign drivers
  /// opt into Threaded via the ONEBIT_DISPATCH bench knob.
  DispatchBackend dispatch = DispatchBackend::Switch;
  /// Optional precompiled stream for the module being executed. When null,
  /// a Threaded run consults the per-process registry (ThreadedCode::get),
  /// which re-validates the module's structural fingerprint on every run —
  /// correct but O(module size). Callers that execute one module thousands
  /// of times (fi::Workload) precompile once and pass the handle here.
  /// Contract: must be ThreadedCode::get() of the exact module passed to
  /// execute()/Machine; a stream decoded from a different module is
  /// undefined behavior.
  std::shared_ptr<const ThreadedCode> threadedCode;
};

struct ExecResult {
  ExecStatus status = ExecStatus::Ok;
  TrapKind trap = TrapKind::None;
  std::uint64_t instructions = 0;      ///< dynamic instructions executed
  std::uint64_t readCandidates = 0;    ///< inject-on-read candidate count
  std::uint64_t writeCandidates = 0;   ///< inject-on-write candidate count
  std::uint64_t storeCandidates = 0;   ///< store-event candidate count
  std::int64_t returnValue = 0;
  bool outputTruncated = false;
  std::string output;
};

/// Execute `mod` from its entry function. The module must have passed
/// ir::verify. `hook` may be nullptr (golden runs).
ExecResult execute(const ir::Module& mod, const ExecLimits& limits = {},
                   ExecHook* hook = nullptr);

}  // namespace onebit::vm
