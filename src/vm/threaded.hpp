// Pre-decoded direct-threaded code for the fast hook-free execution loop.
//
// The reference interpreter (vm/machine.cpp) re-reads each ir::Instr on
// every dynamic execution: a vector of variant operands, attribute fields
// spread over a cache line, and one indirect branch through a switch. The
// threaded backend pays that decode cost ONCE per module: every function's
// blocks are flattened into a dense stream of fixed-size Ops — computed-goto
// label pointer, pre-resolved branch targets (stream indices), operand slots
// in a shared contiguous pool, and pre-computed candidate-counter flags —
// which the loop in vm/machine_threaded.cpp executes with one `goto *p` per
// instruction (GCC/Clang; a decoded switch on other compilers).
//
// Layout invariant: a function's Ops appear block by block in block order,
// one Op per ir::Instr, so the stream index of (block, ip) is
// `blockStart[block] + ip`. That makes mid-block entry trivial — a Machine
// resumed from a snapshot (or switching over from the hooked reference loop
// mid-run) computes its stream position directly from the frame's
// block/ip coordinates, and Ret re-enters the caller the same way.
//
// Decoded streams are immutable and shared: ThreadedCode::get() keeps a
// small registry keyed by module address, validated by a full structural
// fingerprint of every field the decode reads — an address reused by a new
// module re-decodes instead of replaying stale code.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ir/instr.hpp"
#include "ir/module.hpp"

namespace onebit::vm {

class ThreadedCode {
 public:
  static constexpr std::size_t kNumOpcodes =
      static_cast<std::size_t>(ir::Opcode::Abort) + 1;
  /// Operand slots per instruction supported by both execution loops (the
  /// reference loop gathers into a fixed 8-slot array). Modules exceeding
  /// this decode to nullptr and run on the reference loop.
  static constexpr std::size_t kMaxOperands = 8;

  /// One operand slot: a register index, or kNoReg + the immediate value.
  struct Arg {
    std::uint32_t reg = ir::kNoReg;
    std::uint64_t imm = 0;
  };

  /// One decoded instruction. `label` is the computed-goto target (null when
  /// the build has no label table — the portable loop switches on `op`).
  struct Op {
    const void* label = nullptr;
    std::uint64_t imm = 0;       ///< Const value / FrameAddr offset bits
    std::uint32_t target = 0;    ///< Br/CondBr taken target (fn-local index)
    std::uint32_t aux = 0;       ///< CondBr false target / callee / width
    std::uint32_t dest = ir::kNoReg;
    std::uint32_t argBase = 0;   ///< first slot in the shared Arg pool
    std::uint32_t block = 0;     ///< provenance: source block id ...
    std::uint32_t ip = 0;        ///< ... and instruction index within it
    std::uint8_t nops = 0;
    std::uint8_t countsRead = 0;   ///< 1 = reads >= 1 register operand
    std::uint8_t countsWrite = 0;  ///< 1 = dest write is a write candidate
    ir::Opcode op = ir::Opcode::Abort;
    ir::IntrinsicKind intrinsic = ir::IntrinsicKind::Sqrt;
    ir::PrintKind printKind = ir::PrintKind::I64;
  };

  /// One function's slice of the stream.
  struct FnCode {
    std::uint32_t opBase = 0;  ///< index of the function's first Op in ops
    std::vector<std::uint32_t> blockStart;  ///< fn-local Op index per block
  };

  std::vector<Op> ops;
  std::vector<Arg> args;
  std::vector<FnCode> fns;
  std::uint64_t fingerprint = 0;  ///< structuralFingerprint at build time

  /// The decoded stream for `mod`, from the registry when the cached entry's
  /// fingerprint still matches, freshly built otherwise. Returns nullptr for
  /// modules the threaded loop cannot run (an instruction with more than
  /// kMaxOperands operands); callers then use the reference loop.
  /// Thread-safe; the returned stream is immutable and outlives the module
  /// reference (callers keep the shared_ptr).
  static std::shared_ptr<const ThreadedCode> get(const ir::Module& mod);

  /// Hash of every module field the decode reads (functions, blocks,
  /// instruction attributes, operands). Equal fingerprints produce
  /// bit-identical decoded streams, which makes the address-keyed registry
  /// safe against module destruction + address reuse.
  static std::uint64_t structuralFingerprint(const ir::Module& mod) noexcept;
};

class Machine;

namespace detail {

/// The direct-threaded execution loop (defined in vm/machine_threaded.cpp).
/// Normal mode: runs `m` (which must be between instructions, hook-free,
/// non-capturing, non-hashing) to completion on `code`. Label-collection
/// mode: when `labelsOut` is non-null, stores the loop's computed-goto label
/// table (indexed by ir::Opcode; null when the build lacks computed goto)
/// and returns without touching `m`/`code` (both may be null).
void runThreadedLoop(Machine* m, const ThreadedCode* code,
                     const void* const** labelsOut);

}  // namespace detail

}  // namespace onebit::vm
