// Parboil programs: bfs, histo (base) and sad, spmv (cpu) — Table II.
#include "progs/registry.hpp"

namespace onebit::progs {

namespace {

const char* const kBfs = R"MC(
// bfs -- Parboil base (shortest-path costs on an irregular uniform-weight
// graph; a deterministic grid-with-chords graph stands in for the NY map)
int W = 16;
int H = 12;
int NODES = 192;
int row_ptr[193];
int col[1000];
int cost[192];
int queue[192];
int seed = 23;

int rnd() {
  seed = (seed * 1103515245 + 12345) & 2147483647;
  return seed;
}

int nedges = 0;

void push_edge(int v) {
  col[nedges] = v;
  nedges++;
}

void make_graph() {
  for (int y = 0; y < H; y++) {
    for (int x = 0; x < W; x++) {
      int u = y * W + x;
      row_ptr[u] = nedges;
      if (x + 1 < W) { push_edge(u + 1); }
      if (x - 1 >= 0) { push_edge(u - 1); }
      if (y + 1 < H) { push_edge(u + W); }
      if (y - 1 >= 0) { push_edge(u - W); }
      // occasional long chord, making the graph irregular
      if (rnd() % 7 == 0) {
        push_edge(rnd() % NODES);
      }
    }
  }
  row_ptr[NODES] = nedges;
}

int main() {
  make_graph();
  for (int i = 0; i < NODES; i++) { cost[i] = -1; }
  cost[0] = 0;
  queue[0] = 0;
  int head = 0;
  int tail = 1;
  while (head < tail) {
    int u = queue[head];
    head++;
    for (int e = row_ptr[u]; e < row_ptr[u + 1]; e++) {
      int v = col[e];
      if (cost[v] < 0) {
        cost[v] = cost[u] + 1;
        queue[tail] = v;
        tail++;
      }
    }
  }
  int sum = 0;
  int maxc = 0;
  for (int i = 0; i < NODES; i++) {
    sum = sum + cost[i];
    if (cost[i] > maxc) { maxc = cost[i]; }
  }
  print_s("bfs visited=");
  print_i(tail);
  print_s(" costsum=");
  print_i(sum);
  print_s(" depth=");
  print_i(maxc);
  print_c(10);
  for (int i = 0; i < NODES; i = i + 23) {
    print_i(cost[i]);
    print_c(' ');
  }
  print_c(10);
  return 0;
}
)MC";

const char* const kHisto = R"MC(
// histo -- Parboil base (2-D saturating histogram, max bin count 255)
int HW = 16;
int HH = 8;
int histo[128];
int seed = 31;

int rnd() {
  seed = (seed * 1103515245 + 12345) & 2147483647;
  return seed;
}

int main() {
  for (int i = 0; i < HW * HH; i++) { histo[i] = 0; }
  // Input distribution is intentionally skewed so some bins saturate.
  for (int n = 0; n < 1000; n++) {
    int x = rnd() % HW;
    int y = rnd() % HH;
    if (rnd() % 3 != 0) {
      x = x % 2;                 // hot region
      y = 0;
    }
    int b = y * HW + x;
    if (histo[b] < 255) {        // saturating increment
      histo[b] = histo[b] + 1;
    }
  }
  int saturated = 0;
  int checksum = 0;
  for (int i = 0; i < HW * HH; i++) {
    if (histo[i] == 255) { saturated++; }
    checksum = (checksum * 37 + histo[i]) & 16777215;
  }
  print_s("histo saturated=");
  print_i(saturated);
  print_s(" checksum=");
  print_i(checksum);
  print_c(10);
  for (int i = 0; i < HW * HH; i = i + 7) {
    print_i(histo[i]);
    print_c(' ');
  }
  print_c(10);
  return 0;
}
)MC";

const char* const kSad = R"MC(
// sad -- Parboil cpu (sum of absolute differences for motion estimation)
int FW = 12;
int FH = 12;
int ref[144];
int cur[144];
int seed = 47;

int rnd() {
  seed = (seed * 1103515245 + 12345) & 2147483647;
  return seed;
}

void make_frames() {
  for (int y = 0; y < FH; y++) {
    for (int x = 0; x < FW; x++) {
      ref[y * FW + x] = (x * 13 + y * 29 + rnd() % 16) & 255;
    }
  }
  // The current frame is the reference shifted by (1,1) plus noise.
  for (int y = 0; y < FH; y++) {
    for (int x = 0; x < FW; x++) {
      int sx = x - 1;
      int sy = y - 1;
      int v = 0;
      if (sx >= 0 && sy >= 0) {
        v = ref[sy * FW + sx];
      } else {
        v = rnd() % 256;
      }
      cur[y * FW + x] = (v + rnd() % 5) & 255;
    }
  }
}

int block_sad(int bx, int by, int dx, int dy) {
  int total = 0;
  for (int y = 0; y < 4; y++) {
    for (int x = 0; x < 4; x++) {
      int cy = by * 4 + y;
      int cx = bx * 4 + x;
      int ry = cy + dy;
      int rx = cx + dx;
      int r = 255;
      if (ry >= 0 && ry < FH && rx >= 0 && rx < FW) {
        r = ref[ry * FW + rx];
      }
      int d = cur[cy * FW + cx] - r;
      if (d < 0) { d = -d; }
      total = total + d;
    }
  }
  return total;
}

int main() {
  make_frames();
  int grand = 0;
  for (int by = 0; by < 3; by++) {
    for (int bx = 0; bx < 3; bx++) {
      int best = 1000000;
      int bdx = 0;
      int bdy = 0;
      for (int dy = -1; dy <= 1; dy++) {
        for (int dx = -1; dx <= 1; dx++) {
          int s = block_sad(bx, by, dx, dy);
          if (s < best) {
            best = s;
            bdx = dx;
            bdy = dy;
          }
        }
      }
      grand = grand + best;
      print_s("mv ");
      print_i(bx);
      print_c(',');
      print_i(by);
      print_s(" -> ");
      print_i(bdx);
      print_c(',');
      print_i(bdy);
      print_s(" sad=");
      print_i(best);
      print_c(10);
    }
  }
  print_s("total sad=");
  print_i(grand);
  print_c(10);
  return 0;
}
)MC";

const char* const kSpmv = R"MC(
// spmv -- Parboil cpu (sparse matrix * dense vector, CSR from a
// coordinate-format-style generator)
int N = 64;
int NNZMAX = 512;
int row_ptr[65];
int colidx[512];
double val[512];
double x[64];
double y[64];
int seed = 61;

int rnd() {
  seed = (seed * 1103515245 + 12345) & 2147483647;
  return seed;
}

int nnz = 0;

void make_matrix() {
  for (int i = 0; i < N; i++) {
    row_ptr[i] = nnz;
    int rownnz = 2 + rnd() % 6;
    int c = rnd() % 4;
    for (int k = 0; k < rownnz && nnz < NNZMAX; k++) {
      colidx[nnz] = c % N;
      val[nnz] = ((double)(rnd() % 1000)) / 100.0 - 5.0;
      nnz++;
      c = c + 1 + rnd() % 9;
    }
  }
  row_ptr[N] = nnz;
  for (int i = 0; i < N; i++) {
    x[i] = ((double)(rnd() % 2000)) / 200.0 - 5.0;
  }
}

int main() {
  make_matrix();
  for (int i = 0; i < N; i++) {
    double acc = 0.0;
    for (int e = row_ptr[i]; e < row_ptr[i + 1]; e++) {
      acc = acc + val[e] * x[colidx[e]];
    }
    y[i] = acc;
  }
  double sum = 0.0;
  double maxabs = 0.0;
  for (int i = 0; i < N; i++) {
    sum = sum + y[i];
    double a = fabs(y[i]);
    if (a > maxabs) { maxabs = a; }
  }
  print_s("spmv nnz=");
  print_i(nnz);
  print_s(" sum=");
  print_f(sum);
  print_s(" maxabs=");
  print_f(maxabs);
  print_c(10);
  for (int i = 0; i < N; i = i + 9) {
    print_f(y[i]);
    print_c(' ');
  }
  print_c(10);
  return 0;
}
)MC";

}  // namespace

void addParboil(std::vector<ProgramInfo>& out) {
  out.push_back({"bfs", "Parboil", "base",
                 "Breadth-first-search shortest-path costs on an irregular "
                 "graph of uniform edge weights.",
                 kBfs});
  out.push_back({"histo", "Parboil", "base",
                 "2-D saturating histogram with a maximum bin count of 255.",
                 kHisto});
  out.push_back({"sad", "Parboil", "cpu",
                 "Sum of absolute differences for motion estimation.", kSad});
  out.push_back({"spmv", "Parboil", "cpu",
                 "Product of a sparse matrix with a dense vector.", kSpmv});
}

}  // namespace onebit::progs
