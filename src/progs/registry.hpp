// Benchmark program registry.
//
// The 15 workloads of the paper (11 MiBench + 4 Parboil programs, Table II)
// re-implemented in MiniC with small deterministic synthetic inputs. Each
// entry carries its source text; compileProgram() turns it into verified IR.
//
// Substitution note (see DESIGN.md §2): inputs are generated in-program with
// a fixed LCG instead of being read from the suites' input files, so golden
// runs are bit-reproducible and need no filesystem.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "ir/module.hpp"

namespace onebit::progs {

struct ProgramInfo {
  std::string name;         ///< e.g. "basicmath"
  std::string suite;        ///< "MiBench" or "Parboil"
  std::string package;      ///< e.g. "automotive", "base", "cpu"
  std::string description;  ///< one-line summary (Table II wording)
  std::string source;       ///< MiniC source text
};

/// All 15 programs in Table II order.
const std::vector<ProgramInfo>& allPrograms();

/// Lookup by name; nullptr when unknown.
const ProgramInfo* findProgram(std::string_view name);

/// Compile a program's MiniC source to verified IR. When `optimized` is
/// true, runs the opt pass pipeline (the -O1-style IR variant; see
/// bench/ablation_optimization).
ir::Module compileProgram(const ProgramInfo& info, bool optimized = false);

/// Count the physical source lines of a program (Table II "LoC" analog).
std::size_t sourceLines(const ProgramInfo& info);

}  // namespace onebit::progs
