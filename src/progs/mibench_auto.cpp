// MiBench "automotive" package: basicmath and qsort (Table II).
#include "progs/registry.hpp"

namespace onebit::progs {

namespace {

// basicmath: cubic equation solving (trigonometric method), integer square
// roots and degree<->radian conversions, as in MiBench's basicmath_small.
const char* const kBasicmath = R"MC(
// basicmath -- MiBench automotive (small input)
double PI = 3.141592653589793;

// acos via atan2 (the VM exposes atan2/sqrt intrinsics, not acos)
double arccos(double x) {
  return atan2(sqrt(1.0 - x * x), x);
}

double cbrt_(double x) {
  if (x >= 0.0) { return pow(x, 1.0 / 3.0); }
  return -pow(-x, 1.0 / 3.0);
}

// Solve a*x^3 + b*x^2 + c*x + d = 0; prints the real roots.
void solve_cubic(double a, double b, double c, double d) {
  double a1 = b / a;
  double a2 = c / a;
  double a3 = d / a;
  double q = (a1 * a1 - 3.0 * a2) / 9.0;
  double r = (2.0 * a1 * a1 * a1 - 9.0 * a1 * a2 + 27.0 * a3) / 54.0;
  double r2 = r * r;
  double q3 = q * q * q;
  if (r2 < q3) {
    double theta = arccos(r / sqrt(q3));
    double sq = -2.0 * sqrt(q);
    print_s("3 roots:");
    print_f(sq * cos(theta / 3.0) - a1 / 3.0);
    print_c(' ');
    print_f(sq * cos((theta + 2.0 * PI) / 3.0) - a1 / 3.0);
    print_c(' ');
    print_f(sq * cos((theta + 4.0 * PI) / 3.0) - a1 / 3.0);
    print_c(10);
  } else {
    double e = cbrt_(fabs(r) + sqrt(r2 - q3));
    if (r > 0.0) { e = -e; }
    double x = e + (e != 0.0 ? q / e : 0.0) - a1 / 3.0;
    print_s("1 root:");
    print_f(x);
    print_c(10);
  }
}

// Integer square root by successive approximation (MiBench usqrt).
int usqrt(int x) {
  int r = 0;
  int bit = 1 << 30;
  while (bit > x) { bit = bit >> 2; }
  while (bit != 0) {
    if (x >= r + bit) {
      x = x - (r + bit);
      r = (r >> 1) + bit;
    } else {
      r = r >> 1;
    }
    bit = bit >> 2;
  }
  return r;
}

double deg2rad(double d) { return d * PI / 180.0; }
double rad2deg(double r) { return r * 180.0 / PI; }

int main() {
  // Cubic sweeps (coefficients follow MiBench's driver).
  solve_cubic(1.0, -10.5, 32.0, -30.0);
  solve_cubic(1.0, -4.5, 17.0, -30.0);
  solve_cubic(1.0, -3.5, 22.0, -31.0);
  solve_cubic(1.0, -13.7, 1.0, -35.0);
  for (int ai = 1; ai < 5; ai++) {
    for (int bi = 10; bi > 8; bi--) {
      solve_cubic((double)ai, (double)bi, 5.0, -30.0);
    }
  }

  // Integer square roots.
  int ssum = 0;
  for (int i = 1; i < 300; i = i + 7) {
    ssum = ssum + usqrt(i * i + i);
  }
  print_s("usqrt sum=");
  print_i(ssum);
  print_c(10);

  // Angle conversions.
  double acc = 0.0;
  for (int deg = 0; deg <= 360; deg = deg + 15) {
    acc = acc + deg2rad((double)deg);
  }
  print_s("rad acc=");
  print_f(acc);
  print_c(10);
  acc = 0.0;
  for (int i = 0; i <= 48; i++) {
    acc = acc + rad2deg((double)i * 0.13);
  }
  print_s("deg acc=");
  print_f(acc);
  print_c(10);
  return 0;
}
)MC";

// qsort: recursive quicksort over an LCG-generated word list, as in
// MiBench's qsort_small (which sorts words; we sort their integer keys).
const char* const kQsort = R"MC(
// qsort -- MiBench automotive (small input)
int seed = 42;
int data[200];

int rnd() {
  seed = (seed * 1103515245 + 12345) & 2147483647;
  return seed;
}

void swap_(int a[], int i, int j) {
  int t = a[i];
  a[i] = a[j];
  a[j] = t;
}

int partition_(int a[], int lo, int hi) {
  int p = a[hi];
  int i = lo - 1;
  for (int j = lo; j < hi; j++) {
    if (a[j] <= p) {
      i++;
      swap_(a, i, j);
    }
  }
  swap_(a, i + 1, hi);
  return i + 1;
}

void quicksort(int a[], int lo, int hi) {
  if (lo < hi) {
    int m = partition_(a, lo, hi);
    quicksort(a, lo, m - 1);
    quicksort(a, m + 1, hi);
  }
}

int main() {
  for (int i = 0; i < 200; i++) {
    data[i] = rnd() % 10000;
  }
  quicksort(data, 0, 199);
  int bad = 0;
  int sum = 0;
  for (int i = 0; i < 200; i++) {
    sum = (sum * 31 + data[i]) & 1048575;
    if (i > 0 && data[i] < data[i - 1]) { bad++; }
  }
  print_s("qsort checksum=");
  print_i(sum);
  print_s(" inversions=");
  print_i(bad);
  print_c(10);
  for (int i = 0; i < 200; i = i + 23) {
    print_i(data[i]);
    print_c(' ');
  }
  print_c(10);
  return 0;
}
)MC";

}  // namespace

void addMiBenchAuto(std::vector<ProgramInfo>& out) {
  out.push_back({"basicmath", "MiBench", "automotive",
                 "Mathematical calculations: cubic equations, integer square "
                 "roots, angle conversions.",
                 kBasicmath});
  out.push_back({"qsort", "MiBench", "automotive",
                 "Quick Sort over a pseudo-random word list.", kQsort});
}

}  // namespace onebit::progs
