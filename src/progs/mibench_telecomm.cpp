// MiBench "telecomm" package: FFT, IFFT and CRC32 (Table II).
#include "progs/registry.hpp"

namespace onebit::progs {

namespace {

// Shared FFT machinery: synthetic multi-sinusoid wave + iterative radix-2
// transform (MiBench's FFT drives the same kernel forwards and backwards).
const char* const kFftCommon = R"MC(
int N = 64;
double re[64];
double im[64];
int seed = 13;
double TWO_PI = 6.283185307179586;

int rnd() {
  seed = (seed * 1103515245 + 12345) & 2147483647;
  return seed;
}

void make_wave() {
  for (int i = 0; i < N; i++) {
    re[i] = 0.0;
    im[i] = 0.0;
  }
  for (int s = 0; s < 4; s++) {
    int freq = 1 + rnd() % 16;
    double amp = (double)(1 + rnd() % 5);
    for (int i = 0; i < N; i++) {
      re[i] = re[i] + amp * sin(TWO_PI * (double)(freq * i) / (double)N);
    }
  }
}

void fft(double xr[], double xi[], int n, int inverse) {
  // Bit-reversal permutation.
  int j = 0;
  for (int i = 0; i < n - 1; i++) {
    if (i < j) {
      double tr = xr[i]; xr[i] = xr[j]; xr[j] = tr;
      double ti = xi[i]; xi[i] = xi[j]; xi[j] = ti;
    }
    int m = n >> 1;
    while (m >= 1 && j >= m) {
      j = j - m;
      m = m >> 1;
    }
    j = j + m;
  }
  // Butterflies.
  for (int len = 2; len <= n; len = len << 1) {
    double ang = TWO_PI / (double)len;
    if (inverse == 0) { ang = -ang; }
    int half = len >> 1;
    for (int i = 0; i < n; i = i + len) {
      for (int k = 0; k < half; k++) {
        double wr = cos(ang * (double)k);
        double wi = sin(ang * (double)k);
        int a = i + k;
        int b = i + k + half;
        double ur = xr[a];
        double ui = xi[a];
        double vr = xr[b] * wr - xi[b] * wi;
        double vi = xr[b] * wi + xi[b] * wr;
        xr[a] = ur + vr;
        xi[a] = ui + vi;
        xr[b] = ur - vr;
        xi[b] = ui - vi;
      }
    }
  }
  if (inverse == 1) {
    for (int i = 0; i < n; i++) {
      xr[i] = xr[i] / (double)n;
      xi[i] = xi[i] / (double)n;
    }
  }
}
)MC";

const char* const kFftMain = R"MC(
int main() {
  make_wave();
  fft(re, im, N, 0);
  print_s("fft bins:");
  print_c(10);
  for (int k = 1; k <= 17; k = k + 2) {
    double mag = sqrt(re[k] * re[k] + im[k] * im[k]);
    print_i(k);
    print_c(':');
    print_f(mag);
    print_c(10);
  }
  return 0;
}
)MC";

const char* const kIfftMain = R"MC(
double orig[64];

int main() {
  make_wave();
  for (int i = 0; i < N; i++) { orig[i] = re[i]; }
  fft(re, im, N, 0);
  fft(re, im, N, 1);
  double maxerr = 0.0;
  double sum = 0.0;
  for (int i = 0; i < N; i++) {
    double e = fabs(re[i] - orig[i]);
    if (e > maxerr) { maxerr = e; }
    sum = sum + re[i];
  }
  print_s("ifft maxerr<1e-6=");
  if (maxerr < 0.000001) { print_i(1); } else { print_i(0); }
  print_s(" sum=");
  print_f(sum);
  print_c(10);
  for (int i = 0; i < N; i = i + 9) {
    print_f(re[i]);
    print_c(' ');
  }
  print_c(10);
  return 0;
}
)MC";

// CRC32: reflected table-driven CRC (polynomial 0xEDB88320) over a
// pseudo-random byte buffer standing in for MiBench's sound file.
const char* const kCrc32 = R"MC(
// crc32 -- MiBench telecomm
int crc_table[256];
char data[512];
int seed = 99;

int rnd() {
  seed = (seed * 1103515245 + 12345) & 2147483647;
  return seed;
}

void make_table() {
  for (int n = 0; n < 256; n++) {
    int c = n;
    for (int k = 0; k < 8; k++) {
      if (c & 1) {
        c = 3988292384 ^ (c >> 1);
      } else {
        c = c >> 1;
      }
    }
    crc_table[n] = c;
  }
}

int crc_of(char buf[], int len) {
  int crc = 4294967295;
  for (int i = 0; i < len; i++) {
    crc = crc_table[(crc ^ buf[i]) & 255] ^ (crc >> 8);
    crc = crc & 4294967295;
  }
  return crc ^ 4294967295;
}

int main() {
  make_table();
  for (int i = 0; i < 512; i++) {
    data[i] = rnd() % 256;
  }
  int c1 = crc_of(data, 512);
  int c2 = crc_of(data, 256);
  print_s("crc32 full=");
  print_i(c1 & 4294967295);
  print_s(" half=");
  print_i(c2 & 4294967295);
  print_c(10);
  return 0;
}
)MC";

std::string fftWithMain(const char* mainPart) {
  return std::string(kFftCommon) + mainPart;
}

}  // namespace

void addMiBenchTelecomm(std::vector<ProgramInfo>& out) {
  out.push_back({"fft", "MiBench", "telecomm",
                 "Fast Fourier Transform on an array of synthetic wave data.",
                 fftWithMain(kFftMain)});
  out.push_back({"ifft", "MiBench", "telecomm",
                 "Inverse FFT (forward then backward transform).",
                 fftWithMain(kIfftMain)});
  out.push_back({"crc32", "MiBench", "telecomm",
                 "32-bit Cyclic Redundancy Check over a byte stream.", kCrc32});
}

}  // namespace onebit::progs
