#include "progs/registry.hpp"

#include "lang/compile.hpp"
#include "opt/passes.hpp"

namespace onebit::progs {

// Defined in the per-suite translation units.
void addMiBenchAuto(std::vector<ProgramInfo>& out);
void addMiBenchSusan(std::vector<ProgramInfo>& out);
void addMiBenchTelecomm(std::vector<ProgramInfo>& out);
void addMiBenchMisc(std::vector<ProgramInfo>& out);
void addParboil(std::vector<ProgramInfo>& out);

const std::vector<ProgramInfo>& allPrograms() {
  static const std::vector<ProgramInfo> programs = [] {
    std::vector<ProgramInfo> out;
    // Table II order: automotive, telecomm, network, security, office, Parboil.
    addMiBenchAuto(out);      // basicmath, qsort
    addMiBenchSusan(out);     // susan_corners, susan_edges, susan_smoothing
    addMiBenchTelecomm(out);  // fft, ifft, crc32
    addMiBenchMisc(out);      // dijkstra, sha, stringsearch
    addParboil(out);          // bfs, histo, sad, spmv
    return out;
  }();
  return programs;
}

const ProgramInfo* findProgram(std::string_view name) {
  for (const auto& p : allPrograms()) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

ir::Module compileProgram(const ProgramInfo& info, bool optimized) {
  ir::Module mod = lang::compileMiniC(info.source);
  if (optimized) opt::optimize(mod);
  return mod;
}

std::size_t sourceLines(const ProgramInfo& info) {
  std::size_t lines = 1;
  for (const char c : info.source) {
    if (c == '\n') ++lines;
  }
  return lines;
}

}  // namespace onebit::progs
