// MiBench "automotive" package: the three SUSAN image kernels (Table II).
//
// The paper runs SUSAN on a black & white image of a rectangle; we generate
// the same kind of image (dark background, bright rectangle, slight
// deterministic noise) in-program.
#include "progs/registry.hpp"

namespace onebit::progs {

namespace {

// Shared MiniC prelude: image dimensions, generation, and the SUSAN
// brightness-similarity function c(dI) = 100*exp(-(dI/t)^6).
const char* const kSusanCommon = R"MC(
int W = 14;
int H = 10;
int img[140];
int seed = 7;

int rnd() {
  seed = (seed * 1103515245 + 12345) & 2147483647;
  return seed;
}

void make_image() {
  for (int y = 0; y < H; y++) {
    for (int x = 0; x < W; x++) {
      int v = 30 + rnd() % 8;                  // dark background + noise
      if (x >= 3 && x < 11 && y >= 2 && y < 8) {
        v = 200 + rnd() % 8;                   // bright rectangle
      }
      img[y * W + x] = v;
    }
  }
}

// Brightness similarity in [0,100]; t = 27 as in SUSAN's default.
int similar(int a, int b) {
  double d = ((double)(a - b)) / 27.0;
  double p = d * d * d * d * d * d;
  return (int)(100.0 * exp(-p));
}
)MC";

const char* const kSusanSmoothingMain = R"MC(
int out[140];

int main() {
  make_image();
  // 3x3 brightness-weighted smoothing (SUSAN noise filtering).
  for (int y = 0; y < H; y++) {
    for (int x = 0; x < W; x++) {
      int c = img[y * W + x];
      int num = 0;
      int den = 0;
      for (int dy = -1; dy <= 1; dy++) {
        for (int dx = -1; dx <= 1; dx++) {
          int yy = y + dy;
          int xx = x + dx;
          if (yy >= 0 && yy < H && xx >= 0 && xx < W) {
            if (dx != 0 || dy != 0) {
              int w = similar(img[yy * W + xx], c);
              num = num + w * img[yy * W + xx];
              den = den + w;
            }
          }
        }
      }
      if (den > 0) {
        out[y * W + x] = num / den;
      } else {
        out[y * W + x] = c;
      }
    }
  }
  int sum = 0;
  for (int i = 0; i < W * H; i++) {
    sum = (sum * 131 + out[i]) & 16777215;
  }
  print_s("smooth checksum=");
  print_i(sum);
  print_c(10);
  for (int i = 0; i < W * H; i = i + 17) {
    print_i(out[i]);
    print_c(' ');
  }
  print_c(10);
  return 0;
}
)MC";

const char* const kSusanEdgesMain = R"MC(
int edge[140];

int main() {
  make_image();
  // USAN area per pixel over a 3x3 mask; edge response = g - area (g=2250).
  int edges = 0;
  int checksum = 0;
  for (int y = 1; y < H - 1; y++) {
    for (int x = 1; x < W - 1; x++) {
      int c = img[y * W + x];
      int area = 0;
      for (int dy = -1; dy <= 1; dy++) {
        for (int dx = -1; dx <= 1; dx++) {
          area = area + similar(img[(y + dy) * W + (x + dx)], c);
        }
      }
      int resp = 0;
      if (area < 675) {               // g = 3*max_area/4 with max 900
        resp = 675 - area;
        edges++;
      }
      edge[y * W + x] = resp;
      checksum = (checksum * 31 + resp) & 16777215;
    }
  }
  print_s("edges=");
  print_i(edges);
  print_s(" checksum=");
  print_i(checksum);
  print_c(10);
  return 0;
}
)MC";

const char* const kSusanCornersMain = R"MC(
int corner[140];

int main() {
  make_image();
  // Corner response: tighter geometric threshold g = max_area/2.
  int corners = 0;
  int checksum = 0;
  for (int y = 1; y < H - 1; y++) {
    for (int x = 1; x < W - 1; x++) {
      int c = img[y * W + x];
      int area = 0;
      for (int dy = -1; dy <= 1; dy++) {
        for (int dx = -1; dx <= 1; dx++) {
          if (dx != 0 || dy != 0) {
            area = area + similar(img[(y + dy) * W + (x + dx)], c);
          }
        }
      }
      int resp = 0;
      if (area < 400) {               // g = half of max USAN area (800)
        resp = 400 - area;
      }
      corner[y * W + x] = resp;
    }
  }
  // Non-maximum suppression over 3x3 neighborhoods.
  for (int y = 1; y < H - 1; y++) {
    for (int x = 1; x < W - 1; x++) {
      int r = corner[y * W + x];
      if (r > 0) {
        int best = 1;
        for (int dy = -1; dy <= 1; dy++) {
          for (int dx = -1; dx <= 1; dx++) {
            if (corner[(y + dy) * W + (x + dx)] > r) { best = 0; }
          }
        }
        if (best == 1) {
          corners++;
          checksum = (checksum * 31 + y * W + x) & 16777215;
          print_s("corner ");
          print_i(x);
          print_c(',');
          print_i(y);
          print_c(10);
        }
      }
    }
  }
  print_s("corners=");
  print_i(corners);
  print_s(" checksum=");
  print_i(checksum);
  print_c(10);
  return 0;
}
)MC";

std::string withCommon(const char* mainPart) {
  return std::string(kSusanCommon) + mainPart;
}

}  // namespace

void addMiBenchSusan(std::vector<ProgramInfo>& out) {
  out.push_back({"susan_corners", "MiBench", "automotive",
                 "Finds corners of a black & white image of a rectangle.",
                 withCommon(kSusanCornersMain)});
  out.push_back({"susan_edges", "MiBench", "automotive",
                 "Finds edges of a black & white image of a rectangle.",
                 withCommon(kSusanEdgesMain)});
  out.push_back({"susan_smoothing", "MiBench", "automotive",
                 "Smooths a black & white image of a rectangle.",
                 withCommon(kSusanSmoothingMain)});
}

}  // namespace onebit::progs
