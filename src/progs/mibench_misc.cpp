// MiBench "network", "security" and "office" packages:
// dijkstra, sha and stringsearch (Table II).
#include "progs/registry.hpp"

namespace onebit::progs {

namespace {

const char* const kDijkstra = R"MC(
// dijkstra -- MiBench network
int NUM = 12;
int adj[144];
int dist[12];
int done[12];
int seed = 17;

int rnd() {
  seed = (seed * 1103515245 + 12345) & 2147483647;
  return seed;
}

void make_graph() {
  for (int i = 0; i < NUM; i++) {
    for (int j = 0; j < NUM; j++) {
      if (i == j) {
        adj[i * NUM + j] = 0;
      } else {
        adj[i * NUM + j] = 1 + rnd() % 40;
      }
    }
  }
}

void dijkstra(int src) {
  for (int i = 0; i < NUM; i++) {
    dist[i] = 1000000;
    done[i] = 0;
  }
  dist[src] = 0;
  for (int iter = 0; iter < NUM; iter++) {
    int best = -1;
    int bestd = 1000001;
    for (int i = 0; i < NUM; i++) {
      if (done[i] == 0 && dist[i] < bestd) {
        bestd = dist[i];
        best = i;
      }
    }
    if (best < 0) { break; }
    done[best] = 1;
    for (int j = 0; j < NUM; j++) {
      int nd = dist[best] + adj[best * NUM + j];
      if (nd < dist[j]) {
        dist[j] = nd;
      }
    }
  }
}

int main() {
  make_graph();
  for (int src = 0; src < NUM; src = src + 3) {
    dijkstra(src);
    print_s("from ");
    print_i(src);
    print_c(':');
    for (int j = 0; j < NUM; j++) {
      print_c(' ');
      print_i(dist[j]);
    }
    print_c(10);
  }
  return 0;
}
)MC";

const char* const kSha = R"MC(
// sha -- MiBench security (SHA-1 over an ASCII buffer)
int M32 = 4294967295;
char msg[256];
int w[80];
int h0 = 1732584193;
int h1 = 4023233417;
int h2 = 2562383102;
int h3 = 271733878;
int h4 = 3285377520;
int seed = 5;

int rnd() {
  seed = (seed * 1103515245 + 12345) & 2147483647;
  return seed;
}

int rotl(int x, int n) {
  return ((x << n) | ((x & M32) >> (32 - n))) & M32;
}

void process_block(int off) {
  for (int t = 0; t < 16; t++) {
    int i = off + t * 4;
    w[t] = ((msg[i] << 24) | (msg[i + 1] << 16) | (msg[i + 2] << 8) |
            msg[i + 3]) & M32;
  }
  for (int t = 16; t < 80; t++) {
    w[t] = rotl(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1);
  }
  int a = h0;
  int b = h1;
  int c = h2;
  int d = h3;
  int e = h4;
  for (int t = 0; t < 80; t++) {
    int f = 0;
    int k = 0;
    if (t < 20) {
      f = (b & c) | ((~b & M32) & d);
      k = 1518500249;
    } else if (t < 40) {
      f = b ^ c ^ d;
      k = 1859775393;
    } else if (t < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 2400959708;
    } else {
      f = b ^ c ^ d;
      k = 3395469782;
    }
    int tmp = (rotl(a, 5) + f + e + k + w[t]) & M32;
    e = d;
    d = c;
    c = rotl(b, 30);
    b = a;
    a = tmp;
  }
  h0 = (h0 + a) & M32;
  h1 = (h1 + b) & M32;
  h2 = (h2 + c) & M32;
  h3 = (h3 + d) & M32;
  h4 = (h4 + e) & M32;
}

int main() {
  // 192 ASCII bytes of pseudo-text.
  int len = 192;
  for (int i = 0; i < len; i++) {
    msg[i] = 32 + rnd() % 95;
  }
  // SHA-1 padding: 0x80, zeros, 64-bit big-endian bit length.
  msg[len] = 128;
  for (int i = len + 1; i < 256; i++) { msg[i] = 0; }
  int bits = len * 8;
  msg[252] = (bits >> 24) & 255;
  msg[253] = (bits >> 16) & 255;
  msg[254] = (bits >> 8) & 255;
  msg[255] = bits & 255;
  for (int off = 0; off < 256; off = off + 64) {
    process_block(off);
  }
  print_s("sha1=");
  print_i(h0);
  print_c(' ');
  print_i(h1);
  print_c(' ');
  print_i(h2);
  print_c(' ');
  print_i(h3);
  print_c(' ');
  print_i(h4);
  print_c(10);
  return 0;
}
)MC";

const char* const kStringsearch = R"MC(
// stringsearch -- MiBench office (case-insensitive Horspool search)
char text[] = "The Quick Brown Fox Jumps Over The Lazy Dog. Pack my box with five dozen liquor jugs. How vexingly quick daft zebras jump! Sphinx of black quartz, judge my vow. Bright vixens jump; dozy fowl quack.";
char pat0[] = "quick";
char pat1[] = "DOZEN";
char pat2[] = "Vow";
char pat3[] = "zebra";
char pat4[] = "missing";
char pat5[] = "QUACK.";
int shift[256];

int lowercase(int c) {
  if (c >= 'A' && c <= 'Z') {
    return c + 32;
  }
  return c;
}

int strlen_(char s[]) {
  int n = 0;
  while (s[n] != 0) { n++; }
  return n;
}

// Case-insensitive Boyer-Moore-Horspool; returns first match index or -1.
int search(char hay[], int haylen, char needle[]) {
  int m = strlen_(needle);
  if (m == 0 || m > haylen) { return -1; }
  for (int i = 0; i < 256; i++) { shift[i] = m; }
  for (int i = 0; i < m - 1; i++) {
    shift[lowercase(needle[i])] = m - 1 - i;
  }
  int pos = 0;
  while (pos <= haylen - m) {
    int j = m - 1;
    while (j >= 0 && lowercase(hay[pos + j]) == lowercase(needle[j])) {
      j--;
    }
    if (j < 0) { return pos; }
    pos = pos + shift[lowercase(hay[pos + m - 1])];
  }
  return -1;
}

void report(char pat[]) {
  int n = strlen_(text);
  int at = search(text, n, pat);
  print_s("found at ");
  print_i(at);
  print_c(10);
}

int main() {
  report(pat0);
  report(pat1);
  report(pat2);
  report(pat3);
  report(pat4);
  report(pat5);
  return 0;
}
)MC";

}  // namespace

void addMiBenchMisc(std::vector<ProgramInfo>& out) {
  out.push_back({"dijkstra", "MiBench", "network",
                 "Dijkstra shortest paths over an adjacency-matrix graph.",
                 kDijkstra});
  out.push_back({"sha", "MiBench", "security",
                 "SHA-1: 160-bit digest of an ASCII text buffer.", kSha});
  out.push_back({"stringsearch", "MiBench", "office",
                 "Case-insensitive word search in phrases.", kStringsearch});
}

}  // namespace onebit::progs
